//! Ranking of multi-drug associations (thesis §3.6, §5.3, Table 5.2).
//!
//! Table 5.2 compares four rankings of the quarter's multi-drug
//! associations: plain confidence and plain lift over the *unfiltered* rule
//! pool, and exclusiveness (with confidence or lift) over the closed MCAC
//! pool. All four live here, plus improvement as an ablation baseline.

use crate::cluster::Mcac;
use crate::exclusiveness::{improvement, ExclusivenessConfig};
use maras_mining::TransactionDb;
use maras_rules::{DrugAdrRule, Measure};
use maras_signals::{score_rules, ContingencyTable, SignalScores};
use serde::{Deserialize, Serialize};

/// A scored cluster, the unit of MARAS's ranked output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RankedMcac {
    /// The cluster (target rule + full context).
    pub cluster: Mcac,
    /// Interestingness under the ranking's score.
    pub score: f64,
    /// The full disproportionality block for the target rule (every
    /// baseline measure plus the cluster's exclusiveness), computed once by
    /// the signal engine during ranking.
    pub scores: SignalScores,
}

/// The ranking methods of Table 5.2, plus the improvement ablation and the
/// disproportionality-baseline orderings served by `--rank-by` / `?sort_by=`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RankingMethod {
    /// Order rules by raw confidence (no closedness filter, no context).
    Confidence,
    /// Order rules by raw lift (no closedness filter, no context).
    Lift,
    /// Exclusiveness (Formula 3.5) with the given inner measure and θ.
    Exclusiveness(ExclusivenessConfig),
    /// Bayardo's improvement (Formula 3.2) with the given inner measure.
    Improvement(Measure),
    /// Proportional reporting ratio point estimate.
    Prr,
    /// Reporting odds ratio point estimate.
    Ror,
    /// MGPS shrunken geometric mean (EBGM).
    Ebgm,
    /// Geometric mean of PRR, ROR and EBGM — a composite that rewards
    /// agreement across the frequentist and Bayesian baselines.
    Composite,
}

impl RankingMethod {
    /// The thesis's "Exclusiveness with Confidence" column.
    pub fn exclusiveness_confidence() -> Self {
        RankingMethod::Exclusiveness(ExclusivenessConfig::default())
    }

    /// The thesis's "Exclusiveness with Lift" column.
    pub fn exclusiveness_lift() -> Self {
        RankingMethod::Exclusiveness(ExclusivenessConfig {
            measure: Measure::Lift,
            ..Default::default()
        })
    }
}

impl std::fmt::Display for RankingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankingMethod::Confidence => write!(f, "Confidence"),
            RankingMethod::Lift => write!(f, "Lift"),
            RankingMethod::Exclusiveness(cfg) => {
                write!(f, "Exclusiveness with {}", cfg.measure)
            }
            RankingMethod::Improvement(m) => write!(f, "Improvement with {m}"),
            RankingMethod::Prr => write!(f, "PRR"),
            RankingMethod::Ror => write!(f, "ROR"),
            RankingMethod::Ebgm => write!(f, "EBGM"),
            RankingMethod::Composite => write!(f, "Composite"),
        }
    }
}

/// Builds and scores a cluster for every multi-drug rule, returning clusters
/// in descending score order (deterministic tie-break on the target rule).
///
/// Single-threaded convenience wrapper over [`rank_clusters_with`].
pub fn rank_clusters(
    rules: Vec<DrugAdrRule>,
    db: &TransactionDb,
    method: RankingMethod,
) -> Vec<RankedMcac> {
    rank_clusters_with(rules, db, method, 1)
}

/// Builds and scores a cluster for every multi-drug rule, returning clusters
/// in descending score order (deterministic tie-break on score, then target
/// support, then antecedent, then consequent — so every ranking method is a
/// total order regardless of thread count).
///
/// The full disproportionality block is computed for every rule in one
/// signal-engine batch pass sharded across `n_threads` workers; the chosen
/// `method` then just picks its key out of the block (or the context-aware
/// legacy scores). Output is identical at every thread count.
pub fn rank_clusters_with(
    rules: Vec<DrugAdrRule>,
    db: &TransactionDb,
    method: RankingMethod,
    n_threads: usize,
) -> Vec<RankedMcac> {
    let _span = maras_obs::span("mcac");
    let rules: Vec<DrugAdrRule> = rules.into_iter().filter(DrugAdrRule::is_multi_drug).collect();
    let base = score_rules(db, &rules, n_threads);
    let cfg = exclusiveness_config(method);
    let mut out: Vec<RankedMcac> = rules
        .into_iter()
        .zip(base)
        .map(|(rule, base)| {
            let cluster = Mcac::build(rule, db);
            let scores = base.with_exclusiveness(cfg.score(&cluster));
            let score = score_from(&cluster, &scores, method);
            RankedMcac { cluster, score, scores }
        })
        .collect();
    sort_ranked(&mut out);
    maras_obs::counter("maras_mcac_clusters_total", "MCAC clusters built and ranked")
        .add(out.len() as u64);
    out
}

/// The exclusiveness configuration a ranking carries along in its score
/// block: the method's own when ranking by exclusiveness, the default
/// otherwise (the block still reports exclusiveness next to the baselines).
fn exclusiveness_config(method: RankingMethod) -> ExclusivenessConfig {
    match method {
        RankingMethod::Exclusiveness(cfg) => cfg,
        _ => ExclusivenessConfig::default(),
    }
}

/// Picks the ranking key for `method` out of a computed score block.
fn score_from(cluster: &Mcac, scores: &SignalScores, method: RankingMethod) -> f64 {
    match method {
        RankingMethod::Confidence => cluster.target.confidence(),
        RankingMethod::Lift => cluster.target.lift(),
        RankingMethod::Exclusiveness(_) => scores.exclusiveness,
        RankingMethod::Improvement(m) => improvement(cluster, m),
        RankingMethod::Prr => scores.prr.estimate,
        RankingMethod::Ror => scores.ror.estimate,
        RankingMethod::Ebgm => scores.ebgm.ebgm,
        RankingMethod::Composite => {
            (scores.prr.estimate * scores.ror.estimate * scores.ebgm.ebgm).cbrt()
        }
    }
}

/// Scores one cluster under a ranking method, deriving the score block from
/// the target rule's stored marginals.
pub fn score_cluster(cluster: &Mcac, method: RankingMethod) -> f64 {
    let table = ContingencyTable::from_stats(&cluster.target.stats)
        .expect("rule stats counted from one database are consistent");
    let cfg = exclusiveness_config(method);
    let scores = SignalScores::from_table(table).with_exclusiveness(cfg.score(cluster));
    score_from(cluster, &scores, method)
}

/// Orders a plain rule pool by confidence or lift — the two context-free
/// columns of Table 5.2, which operate on the unfiltered rule pool.
pub fn rank_rules_by(mut rules: Vec<DrugAdrRule>, measure: Measure) -> Vec<DrugAdrRule> {
    rules.sort_by(|a, b| {
        b.stats
            .measure(measure)
            .partial_cmp(&a.stats.measure(measure))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.support().cmp(&a.support()))
            .then_with(|| a.drugs.cmp(&b.drugs))
            .then_with(|| a.adrs.cmp(&b.adrs))
    });
    rules
}

fn sort_ranked(out: &mut [RankedMcac]) {
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.cluster.target.support().cmp(&a.cluster.target.support()))
            .then_with(|| a.cluster.target.drugs.cmp(&b.cluster.target.drugs))
            .then_with(|| a.cluster.target.adrs.cmp(&b.cluster.target.adrs))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet};
    use maras_rules::{multi_drug_rules, ItemPartition};

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    const P: ItemPartition = ItemPartition { adr_start: 10 };

    /// A database with a planted interaction {0,1}=>{10} (exclusive) and a
    /// dominated combination {2,3}=>{11} where drug 2 alone explains it.
    fn planted_db() -> TransactionDb {
        db(&[
            // exclusive interaction: combo present => ADR, singles never
            &[0, 1, 10],
            &[0, 1, 10],
            &[0, 1, 10],
            &[0, 4],
            &[0, 5],
            &[1, 4],
            &[1, 5],
            // dominated: drug 2 causes ADR 11 alone all the time
            &[2, 3, 11],
            &[2, 3, 11],
            &[2, 3, 11],
            &[2, 11],
            &[2, 11],
            &[2, 11],
            &[3, 6],
        ])
    }

    #[test]
    fn exclusiveness_ranks_planted_interaction_first() {
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 2);
        let ranked = rank_clusters(rules, &d, RankingMethod::exclusiveness_confidence());
        assert!(!ranked.is_empty());
        let top = &ranked[0].cluster.target;
        assert_eq!(top.drugs, ItemSet::from_ids([0u32, 1]));
        assert_eq!(top.adrs, ItemSet::from_ids([10u32]));
        // The dominated combo must rank strictly below.
        let dominated_pos = ranked
            .iter()
            .position(|r| r.cluster.target.drugs == ItemSet::from_ids([2u32, 3]))
            .expect("dominated combo present");
        assert!(dominated_pos > 0);
        assert!(ranked[0].score > ranked[dominated_pos].score);
    }

    #[test]
    fn plain_confidence_cannot_separate_them() {
        // Both combos have confidence 1.0 — the thesis's §5.3 observation
        // that context-free rankings are dominated by uninteresting rules.
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 2);
        let ranked = rank_rules_by(rules, Measure::Confidence);
        let c_exclusive =
            ranked.iter().find(|r| r.drugs == ItemSet::from_ids([0u32, 1])).unwrap().confidence();
        let c_dominated =
            ranked.iter().find(|r| r.drugs == ItemSet::from_ids([2u32, 3])).unwrap().confidence();
        assert_eq!(c_exclusive, c_dominated);
    }

    #[test]
    fn scores_descending_with_deterministic_ties() {
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 1);
        let ranked = rank_clusters(rules.clone(), &d, RankingMethod::exclusiveness_confidence());
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
        // Re-ranking the same input yields the same order.
        let again = rank_clusters(rules, &d, RankingMethod::exclusiveness_confidence());
        let order: Vec<_> = ranked.iter().map(|r| r.cluster.target.drugs.clone()).collect();
        let order2: Vec<_> = again.iter().map(|r| r.cluster.target.drugs.clone()).collect();
        assert_eq!(order, order2);
    }

    #[test]
    fn improvement_method_runs() {
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 2);
        let ranked = rank_clusters(rules, &d, RankingMethod::Improvement(Measure::Confidence));
        assert!(!ranked.is_empty());
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn single_drug_rules_are_excluded() {
        let d = planted_db();
        let mut rules = multi_drug_rules(&d, &P, 1);
        // Inject a single-drug rule; rank_clusters must drop it.
        rules.push(DrugAdrRule::from_parts(
            ItemSet::from_ids([2u32]),
            ItemSet::from_ids([11u32]),
            &d,
        ));
        let ranked = rank_clusters(rules, &d, RankingMethod::exclusiveness_confidence());
        assert!(ranked.iter().all(|r| r.cluster.n_drugs() >= 2));
    }

    #[test]
    fn method_display() {
        assert_eq!(RankingMethod::Confidence.to_string(), "Confidence");
        assert_eq!(
            RankingMethod::exclusiveness_confidence().to_string(),
            "Exclusiveness with confidence"
        );
        assert_eq!(RankingMethod::exclusiveness_lift().to_string(), "Exclusiveness with lift");
        assert_eq!(RankingMethod::Prr.to_string(), "PRR");
        assert_eq!(RankingMethod::Ror.to_string(), "ROR");
        assert_eq!(RankingMethod::Ebgm.to_string(), "EBGM");
        assert_eq!(RankingMethod::Composite.to_string(), "Composite");
    }

    #[test]
    fn ranked_clusters_carry_full_score_block() {
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 2);
        let method = RankingMethod::exclusiveness_confidence();
        let ranked = rank_clusters(rules, &d, method);
        assert!(!ranked.is_empty());
        for r in &ranked {
            // The block's table is the target rule's own marginals.
            let want =
                maras_signals::ContingencyTable::from_stats(&r.cluster.target.stats).unwrap();
            assert_eq!(r.scores.table, want);
            // Exclusiveness in the block matches the ranking key under the
            // exclusiveness method.
            assert_eq!(r.score, r.scores.exclusiveness);
            assert_eq!(r.scores.exclusiveness, ExclusivenessConfig::default().score(&r.cluster));
            assert!(!r.scores.prr.estimate.is_nan());
            assert!(!r.scores.ebgm.ebgm.is_nan());
        }
    }

    #[test]
    fn baseline_methods_rank_by_their_key() {
        let d = planted_db();
        for (method, key) in [
            (
                RankingMethod::Prr,
                (|r: &RankedMcac| r.scores.prr.estimate) as fn(&RankedMcac) -> f64,
            ),
            (RankingMethod::Ror, |r| r.scores.ror.estimate),
            (RankingMethod::Ebgm, |r| r.scores.ebgm.ebgm),
            (RankingMethod::Composite, |r| {
                (r.scores.prr.estimate * r.scores.ror.estimate * r.scores.ebgm.ebgm).cbrt()
            }),
        ] {
            let rules = multi_drug_rules(&d, &P, 2);
            let ranked = rank_clusters(rules, &d, method);
            assert!(!ranked.is_empty(), "{method}");
            for r in &ranked {
                assert_eq!(r.score, key(r), "{method}");
                assert!(r.score.is_finite(), "{method}: {}", r.score);
            }
            assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score), "{method}");
        }
    }

    #[test]
    fn thread_count_does_not_change_ranking() {
        let d = planted_db();
        let method = RankingMethod::exclusiveness_confidence();
        let baseline = rank_clusters_with(multi_drug_rules(&d, &P, 1), &d, method, 1);
        for threads in [2, 4, 8] {
            let par = rank_clusters_with(multi_drug_rules(&d, &P, 1), &d, method, threads);
            assert_eq!(par.len(), baseline.len());
            for (a, b) in par.iter().zip(&baseline) {
                assert_eq!(a.cluster.target, b.cluster.target, "threads={threads}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "threads={threads}");
                assert_eq!(a.scores, b.scores, "threads={threads}");
            }
        }
    }

    #[test]
    fn score_cluster_matches_ranked_score() {
        let d = planted_db();
        let rules = multi_drug_rules(&d, &P, 2);
        for method in [
            RankingMethod::Confidence,
            RankingMethod::exclusiveness_confidence(),
            RankingMethod::Prr,
            RankingMethod::Ebgm,
        ] {
            for r in rank_clusters(rules.clone(), &d, method) {
                assert_eq!(r.score, score_cluster(&r.cluster, method), "{method}");
            }
        }
    }
}
