//! The exclusiveness interestingness score (thesis §3.6, Formulas 3.2–3.5).
//!
//! Exclusiveness measures how much of the target rule's strength is *not*
//! explained by its context: high when the full drug combination is strongly
//! associated with the ADRs while every drug subset is weakly associated.
//! The score evolves in the thesis through three formulas, all kept here:
//!
//! * Formula 3.3 — `p − mean(context)`;
//! * Formula 3.4 — Formula 3.3 scaled by `(1 − θ·Cv)` so a context with one
//!   high-confidence rule hidden in a low average still penalizes;
//! * Formula 3.5 — the per-level form with a cardinality decay `fd(k)`,
//!   giving single-drug context the greatest weight:
//!   `(1/|V|) Σ_k (p − v̄_k) · fd(k) · (1 − θ·Cv(v_k))`.
//!
//! Bayardo et al.'s *improvement* (Formula 3.2) is implemented as the
//! baseline: `min_{X ⊂ A} (p − conf(X ⇒ B))`, which uses only the single
//! strongest sub-rule and thus cannot distinguish clusters whose remaining
//! context differs (§3.6's motivating criticism).

use crate::cluster::Mcac;
use maras_rules::Measure;
use serde::{Deserialize, Serialize};

/// Decay function `fd(k)` weighting context levels by antecedent
/// cardinality (§3.6: importance decreases as `k` grows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DecayFn {
    /// The thesis's experimental choice: `fd(k) = 1 − (k−1)/n` where `n` is
    /// the number of drugs in the target.
    #[default]
    Linear,
    /// No decay: every level weighs 1 (ablation baseline).
    Flat,
    /// Exponential decay `fd(k) = α^(k−1)` with `α ∈ (0, 1]`.
    Exponential(f64),
}

impl DecayFn {
    /// Weight for a level of cardinality `k` in a target with `n` drugs.
    pub fn weight(&self, k: usize, n: usize) -> f64 {
        debug_assert!(k >= 1 && k < n);
        match *self {
            DecayFn::Linear => 1.0 - (k as f64 - 1.0) / n as f64,
            DecayFn::Flat => 1.0,
            DecayFn::Exponential(alpha) => alpha.powi(k as i32 - 1),
        }
    }
}

/// Configuration of the exclusiveness score.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExclusivenessConfig {
    /// Strength measure for the target and its context (confidence or lift;
    /// Table 5.2 ranks with both).
    pub measure: Measure,
    /// Coefficient-of-variation penalty strength `θ ∈ [0, 1]` (Formula 3.4).
    pub theta: f64,
    /// Level decay `fd(k)` (Formula 3.5).
    pub decay: DecayFn,
}

impl Default for ExclusivenessConfig {
    fn default() -> Self {
        ExclusivenessConfig { measure: Measure::Confidence, theta: 0.5, decay: DecayFn::Linear }
    }
}

impl ExclusivenessConfig {
    /// Formula 3.5: the full multi-level exclusiveness score of a cluster.
    pub fn score(&self, cluster: &Mcac) -> f64 {
        let n = cluster.n_drugs();
        let p = cluster.target.stats.measure(self.measure);
        let n_levels = cluster.levels.len() as f64;
        debug_assert!(n_levels >= 1.0);
        let mut acc = 0.0;
        for level in &cluster.levels {
            let values: Vec<f64> =
                level.rules.iter().map(|r| r.stats.measure(self.measure)).collect();
            let mean = mean(&values);
            let cv = coefficient_of_variation(&values);
            let penalty = (1.0 - self.theta * cv).max(0.0);
            acc += (p - mean) * self.decay.weight(level.cardinality, n) * penalty;
        }
        acc / n_levels
    }

    /// Formula 3.3: plain contrast against the whole-context mean.
    pub fn score_mean(&self, cluster: &Mcac) -> f64 {
        let p = cluster.target.stats.measure(self.measure);
        let values: Vec<f64> =
            cluster.context_rules().map(|r| r.stats.measure(self.measure)).collect();
        p - mean(&values)
    }

    /// Formula 3.4: whole-context mean with the CV penalty.
    pub fn score_cv(&self, cluster: &Mcac) -> f64 {
        let p = cluster.target.stats.measure(self.measure);
        let values: Vec<f64> =
            cluster.context_rules().map(|r| r.stats.measure(self.measure)).collect();
        let penalty = (1.0 - self.theta * coefficient_of_variation(&values)).max(0.0);
        (p - mean(&values)) * penalty
    }
}

/// Formula 3.2 — Bayardo et al.'s improvement of the target over its best
/// sub-rule, under the configured measure.
pub fn improvement(cluster: &Mcac, measure: Measure) -> f64 {
    let p = cluster.target.stats.measure(measure);
    cluster.context_rules().map(|r| p - r.stats.measure(measure)).fold(f64::INFINITY, f64::min)
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population coefficient of variation `Cv = σ/μ`, defined as 0 for empty
/// input or zero mean (a context of all-zero confidences has no spread worth
/// penalizing — the target already maximally dominates it).
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    let m = mean(values);
    if values.is_empty() || m == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt() / m
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet, TransactionDb};
    use maras_rules::DrugAdrRule;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn cluster(rows: &[&[u32]], drugs: &[u32], adrs: &[u32]) -> Mcac {
        let d = db(rows);
        let t = DrugAdrRule::from_parts(
            ItemSet::from_ids(drugs.iter().copied()),
            ItemSet::from_ids(adrs.iter().copied()),
            &d,
        );
        Mcac::build(t, &d)
    }

    /// A clean interaction: combo always causes the ADR, singles never do.
    fn exclusive_cluster() -> Mcac {
        cluster(&[&[0, 1, 10], &[0, 1, 10], &[0, 2], &[0, 3], &[1, 2], &[1, 3]], &[0, 1], &[10])
    }

    /// A dominated association: drug 0 alone causes the ADR just as often.
    fn dominated_cluster() -> Mcac {
        cluster(&[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[0, 10], &[1, 2], &[1, 3]], &[0, 1], &[10])
    }

    #[test]
    fn exclusive_combo_scores_high() {
        let cfg = ExclusivenessConfig::default();
        let score = cfg.score(&exclusive_cluster());
        // p=1, singleton confidences 2/4=0.5 and 2/6≈0.33 → positive score.
        assert!(score > 0.2, "score={score}");
    }

    #[test]
    fn dominated_combo_scores_lower() {
        let cfg = ExclusivenessConfig::default();
        let s_exclusive = cfg.score(&exclusive_cluster());
        let s_dominated = cfg.score(&dominated_cluster());
        assert!(
            s_exclusive > s_dominated,
            "exclusive {s_exclusive} must beat dominated {s_dominated}"
        );
    }

    #[test]
    fn improvement_is_min_contrast() {
        let c = dominated_cluster();
        let imp = improvement(&c, Measure::Confidence);
        // Strongest sub-rule: {0}=>{10}: support({0})=4, joint=4 → conf=1.0.
        // p=1.0 → improvement 0.
        assert_eq!(imp, 0.0);
        // Exclusiveness still sees the weak drug-1 context; improvement doesn't.
        let cfg = ExclusivenessConfig::default();
        assert!(cfg.score(&c) > imp);
    }

    #[test]
    fn improvement_negative_when_subrule_stronger() {
        // Sub-rule more predictive than the full combination.
        let c = cluster(&[&[0, 10], &[0, 10], &[0, 1, 10], &[0, 1, 2]], &[0, 1], &[10]);
        // target: sup({0,1})=2, joint=1 → 0.5 ; {0}: 3/4=0.75 → improvement < 0
        assert!(improvement(&c, Measure::Confidence) < 0.0);
    }

    #[test]
    fn formula_progression_on_uniform_context() {
        // With a single context level (2 drugs) and uniform values, 3.3, 3.4
        // and 3.5 coincide: |V|=1, fd(1)=1 for Linear (1-(0)/2=1), Cv=0.
        let c = exclusive_cluster();
        let cfg = ExclusivenessConfig { theta: 0.5, ..Default::default() };
        let f33 = cfg.score_mean(&c);
        let f34 = cfg.score_cv(&c);
        let f35 = cfg.score(&c);
        assert!((f33 - f35).abs() < 1e-12 || f34 <= f33);
        // CV penalty can only reduce the mean-based score when positive.
        assert!(f34 <= f33 + 1e-12);
    }

    #[test]
    fn cv_penalty_distinguishes_spread_contexts() {
        // Two contexts with the same mean, different spread: the one hiding
        // a single high-confidence sub-rule must score lower (§3.6).
        let even = cluster(
            &[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[0, 2], &[1, 10], &[1, 2]],
            &[0, 1],
            &[10],
        ); // both singles conf 0.5
        let spread = cluster(
            &[&[0, 1, 10], &[0, 1, 10], &[0, 10], &[0, 10], &[1, 2], &[1, 3]],
            &[0, 1],
            &[10],
        ); // drug0 conf 1.0, drug1 conf ~0
        let cfg = ExclusivenessConfig { theta: 1.0, ..Default::default() };
        // Means equal (0.5), so Formula 3.3 ties...
        assert!((cfg.score_mean(&even) - cfg.score_mean(&spread)).abs() < 0.01);
        // ...but 3.4/3.5 break the tie against the spread context.
        assert!(cfg.score_cv(&even) > cfg.score_cv(&spread));
        assert!(cfg.score(&even) > cfg.score(&spread));
    }

    #[test]
    fn decay_weights() {
        assert_eq!(DecayFn::Linear.weight(1, 4), 1.0);
        assert_eq!(DecayFn::Linear.weight(2, 4), 0.75);
        assert_eq!(DecayFn::Linear.weight(3, 4), 0.5);
        assert_eq!(DecayFn::Flat.weight(3, 4), 1.0);
        let e = DecayFn::Exponential(0.5);
        assert_eq!(e.weight(1, 4), 1.0);
        assert_eq!(e.weight(3, 4), 0.25);
    }

    #[test]
    fn cv_of_degenerate_inputs() {
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.0, 0.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0.5, 0.5, 0.5]), 0.0);
        assert!(coefficient_of_variation(&[0.0, 1.0]) > 0.9);
    }

    #[test]
    fn lift_measure_variant_runs() {
        let cfg = ExclusivenessConfig { measure: Measure::Lift, ..Default::default() };
        let s = cfg.score(&exclusive_cluster());
        assert!(s.is_finite());
        assert!(s > 0.0, "exclusive combo should have positive lift contrast: {s}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_cluster() -> impl Strategy<Value = Mcac> {
            (
                proptest::collection::vec(
                    proptest::collection::vec(prop_oneof![0u32..4, 10u32..12], 1..6),
                    2..20,
                ),
                2usize..4,
            )
                .prop_map(|(rows, n)| {
                    let mut rows = rows;
                    // Guarantee the target combination occurs at least once.
                    rows.push((0..n as u32).chain([10]).collect());
                    let d = TransactionDb::new(
                        rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                    );
                    let t = DrugAdrRule::from_parts(
                        (0..n as u32).map(Item).collect(),
                        ItemSet::from_ids([10u32]),
                        &d,
                    );
                    Mcac::build(t, &d)
                })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn score_bounded_for_confidence(c in arb_cluster(), theta in 0.0f64..1.0) {
                let cfg = ExclusivenessConfig { theta, ..Default::default() };
                for s in [cfg.score(&c), cfg.score_mean(&c), cfg.score_cv(&c)] {
                    prop_assert!(s.is_finite());
                    prop_assert!((-1.0..=1.0).contains(&s), "confidence contrast out of range: {s}");
                }
            }

            #[test]
            fn improvement_le_target_strength(c in arb_cluster()) {
                let p = c.target.confidence();
                prop_assert!(improvement(&c, Measure::Confidence) <= p + 1e-12);
            }

            #[test]
            fn zero_theta_ignores_cv(c in arb_cluster()) {
                let cfg = ExclusivenessConfig { theta: 0.0, ..Default::default() };
                prop_assert!((cfg.score_cv(&c) - cfg.score_mean(&c)).abs() < 1e-12);
            }
        }
    }
}
