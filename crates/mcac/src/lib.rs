//! Multi-level Contextual Association Clusters and the exclusiveness score —
//! the paper's primary contribution (thesis §3.5–3.6).
//!
//! A multi-drug rule `R ≡ A ⇒ B` is an interesting drug-drug-interaction
//! signal only if the ADRs `B` are *exclusively* associated with the full
//! drug combination `A`, not with any drug subset. The MCAC groups `R` (the
//! *target rule*) with every contextual rule `X ⇒ B`, `X ⊂ A` (Defs
//! 3.5.1–3.5.2), leveled by antecedent cardinality, and the exclusiveness
//! score contrasts the target's strength against its context (Formulas
//! 3.3–3.5), with Bayardo's *improvement* (Formula 3.2) as the baseline it
//! refines.

#![warn(missing_docs)]

pub mod cluster;
pub mod exclusiveness;
pub mod rank;

pub use cluster::{ContextLevel, Mcac};
pub use exclusiveness::{coefficient_of_variation, improvement, DecayFn, ExclusivenessConfig};
pub use rank::{
    rank_clusters, rank_clusters_with, rank_rules_by, score_cluster, RankedMcac, RankingMethod,
};
