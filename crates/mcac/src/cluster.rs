//! MCAC construction (thesis §3.5, Defs 3.5.1–3.5.2, Table 3.1).

use maras_mining::{ItemSet, TransactionDb};
use maras_rules::DrugAdrRule;
use serde::{Deserialize, Serialize};

/// One level of a cluster's context: all contextual rules whose antecedent
/// has the same cardinality `k`, ordered by descending confidence (the order
/// the contextual glyph lays sectors out in, §4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextLevel {
    /// Antecedent cardinality of every rule in this level.
    pub cardinality: usize,
    /// Contextual rules `X ⇒ B`, `|X| = cardinality`, sorted by descending
    /// confidence (ties broken by antecedent for determinism).
    pub rules: Vec<DrugAdrRule>,
}

/// A multi-level contextual association cluster: a *target* multi-drug rule
/// together with its complete context (Def. 3.5.2 — one contextual rule per
/// non-empty proper subset of the target's antecedent, same consequent).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mcac {
    /// The evaluated multi-drug association.
    pub target: DrugAdrRule,
    /// Context levels in descending cardinality (`n-1` first, singletons
    /// last), mirroring Table 3.1's `R̃₂` before `R̃₁` presentation.
    pub levels: Vec<ContextLevel>,
}

impl Mcac {
    /// Builds the cluster for `target`, counting every contextual rule's
    /// support/confidence/lift directly against the database (contextual
    /// rules are routinely below the mining threshold, so they cannot come
    /// from the mined ruleset).
    ///
    /// ```
    /// use maras_mining::{Item, ItemSet, TransactionDb};
    /// use maras_rules::DrugAdrRule;
    /// use maras_mcac::Mcac;
    /// // Drugs 0,1 together always trigger ADR 10; singly they never do.
    /// let db = TransactionDb::new(vec![
    ///     vec![Item(0), Item(1), Item(10)],
    ///     vec![Item(0), Item(2)],
    ///     vec![Item(1), Item(3)],
    /// ]);
    /// let target = DrugAdrRule::from_parts(
    ///     ItemSet::from_ids([0u32, 1]),
    ///     ItemSet::from_ids([10u32]),
    ///     &db,
    /// );
    /// let cluster = Mcac::build(target, &db);
    /// assert_eq!(cluster.context_size(), 2); // {0}=>.. and {1}=>..
    /// assert_eq!(cluster.target.confidence(), 1.0);
    /// // Each single drug appears twice, once with the ADR: conf = 0.5.
    /// assert!(cluster.context_rules().all(|r| r.confidence() <= 0.5));
    /// ```
    ///
    /// # Panics
    /// Panics if the target has fewer than 2 drugs — single-drug rules have
    /// no context and are not drug-drug-interaction candidates (§3.4).
    pub fn build(target: DrugAdrRule, db: &TransactionDb) -> Self {
        let n = target.drugs.len();
        assert!(n >= 2, "MCAC target must be a multi-drug rule");
        assert!(n <= 24, "refusing to enumerate 2^{n} contextual subsets");
        let mut levels: Vec<ContextLevel> =
            (1..n).rev().map(|k| ContextLevel { cardinality: k, rules: Vec::new() }).collect();
        // Enumerate proper non-empty antecedent subsets straight off the
        // borrowed drug slice — one reused scratch buffer, no powerset of
        // owned ItemSets.
        let drugs = target.drugs.items();
        let adrs = target.adrs.items();
        let full = (1u32 << n) - 1;
        let mut subset: Vec<maras_mining::Item> = Vec::with_capacity(n);
        for mask in 1..full {
            subset.clear();
            subset.extend((0..n).filter(|b| mask & (1 << b) != 0).map(|b| drugs[b]));
            let k = subset.len();
            let rule = DrugAdrRule::from_split_slices(&subset, adrs, db);
            // levels[0] has cardinality n-1, levels[n-1-k] has cardinality k.
            levels[n - 1 - k].rules.push(rule);
        }
        for level in &mut levels {
            level.rules.sort_by(|a, b| {
                b.confidence()
                    .partial_cmp(&a.confidence())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.drugs.cmp(&b.drugs))
            });
        }
        Mcac { target, levels }
    }

    /// Number of drugs in the target rule.
    pub fn n_drugs(&self) -> usize {
        self.target.drugs.len()
    }

    /// Total number of contextual rules (`2^n − 2` for `n` drugs).
    pub fn context_size(&self) -> usize {
        self.levels.iter().map(|l| l.rules.len()).sum()
    }

    /// The level holding contextual rules of cardinality `k`, if any.
    pub fn level(&self, cardinality: usize) -> Option<&ContextLevel> {
        self.levels.iter().find(|l| l.cardinality == cardinality)
    }

    /// Iterates over every contextual rule across all levels.
    pub fn context_rules(&self) -> impl Iterator<Item = &DrugAdrRule> {
        self.levels.iter().flat_map(|l| l.rules.iter())
    }

    /// The single-drug level (`k = 1`), the most diagnostic one (§3.6:
    /// individual-drug context matters most).
    pub fn singleton_level(&self) -> &ContextLevel {
        self.levels.last().expect("n >= 2 guarantees a k=1 level")
    }

    /// Checks Def. 3.5.2's completeness invariant: the union of contextual
    /// antecedents is the powerset of the target antecedent minus itself and
    /// the empty set.
    pub fn context_is_complete(&self) -> bool {
        let n = self.n_drugs();
        let expected: usize = (1usize << n) - 2;
        if self.context_size() != expected {
            return false;
        }
        let mut seen: Vec<&ItemSet> = self.context_rules().map(|r| &r.drugs).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len() == expected
            && self.context_rules().all(|r| {
                r.drugs.is_proper_subset_of(&self.target.drugs)
                    && !r.drugs.is_empty()
                    && r.adrs == self.target.adrs
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::Item;
    use maras_rules::ItemPartition;

    fn db(rows: &[&[u32]]) -> TransactionDb {
        TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect())
    }

    fn set(ids: &[u32]) -> ItemSet {
        ItemSet::from_ids(ids.iter().copied())
    }

    fn target(drugs: &[u32], adrs: &[u32], d: &TransactionDb) -> DrugAdrRule {
        DrugAdrRule::from_parts(set(drugs), set(adrs), d)
    }

    #[test]
    fn table_3_1_structure_three_drugs() {
        // Mirrors Table 3.1: [XOLAIR][SINGULAIR][PREDNISONE] => [Asthma]
        // with drugs 0,1,2 and ADR 10.
        let d = db(&[&[0, 1, 2, 10], &[0, 1, 2, 10], &[0, 10], &[1, 2]]);
        let cluster = Mcac::build(target(&[0, 1, 2], &[10], &d), &d);
        assert_eq!(cluster.n_drugs(), 3);
        assert_eq!(cluster.context_size(), 6); // 2^3 - 2
        assert_eq!(cluster.levels.len(), 2);
        assert_eq!(cluster.levels[0].cardinality, 2); // R̃² first
        assert_eq!(cluster.levels[1].cardinality, 1); // R̃¹ last
        assert_eq!(cluster.levels[0].rules.len(), 3);
        assert_eq!(cluster.levels[1].rules.len(), 3);
        assert!(cluster.context_is_complete());
    }

    #[test]
    fn contextual_confidences_counted_from_db() {
        let d = db(&[
            &[0, 1, 10], // combo causes ADR
            &[0, 1, 10],
            &[0, 2], // drug 0 alone, no ADR
            &[0, 3],
            &[1, 10], // drug 1 alone: ADR once in two reports
            &[1, 4],
        ]);
        let cluster = Mcac::build(target(&[0, 1], &[10], &d), &d);
        assert_eq!(cluster.target.confidence(), 1.0);
        let k1 = cluster.singleton_level();
        // {1}=>{10}: support({1})=4 ({0,1,10}x2,{1,10},{1,4}); joint=3 → 0.75
        // {0}=>{10}: support({0})=4; joint=2 → 0.5
        let confs: Vec<(String, f64)> =
            k1.rules.iter().map(|r| (r.drugs.to_string(), r.confidence())).collect();
        assert_eq!(confs[0], ("{i1}".to_string(), 0.75));
        assert_eq!(confs[1], ("{i0}".to_string(), 0.5));
    }

    #[test]
    fn levels_sorted_by_confidence_desc() {
        let d = db(&[&[0, 1, 2, 10], &[0, 10], &[0, 10], &[1, 10], &[1, 5], &[2, 6]]);
        let cluster = Mcac::build(target(&[0, 1, 2], &[10], &d), &d);
        for level in &cluster.levels {
            let confs: Vec<f64> = level.rules.iter().map(|r| r.confidence()).collect();
            assert!(confs.windows(2).all(|w| w[0] >= w[1]), "{confs:?}");
        }
    }

    #[test]
    fn zero_support_context_rules_kept() {
        // Drug subset never reported with the ADRs: confidence 0 but the
        // rule must stay in the context (Def. 3.5.2 demands the full powerset).
        let d = db(&[&[0, 1, 10], &[2, 11]]);
        let cluster = Mcac::build(target(&[0, 1], &[10], &d), &d);
        assert_eq!(cluster.context_size(), 2);
        assert!(cluster.context_is_complete());
    }

    #[test]
    fn four_drug_cluster_has_three_levels() {
        let d = db(&[&[0, 1, 2, 3, 10]]);
        let cluster = Mcac::build(target(&[0, 1, 2, 3], &[10], &d), &d);
        assert_eq!(cluster.levels.len(), 3);
        assert_eq!(cluster.context_size(), 14); // 2^4 - 2
        assert_eq!(cluster.level(3).unwrap().rules.len(), 4);
        assert_eq!(cluster.level(2).unwrap().rules.len(), 6);
        assert_eq!(cluster.level(1).unwrap().rules.len(), 4);
        assert!(cluster.level(4).is_none());
        assert!(cluster.context_is_complete());
    }

    #[test]
    #[should_panic(expected = "multi-drug")]
    fn single_drug_target_panics() {
        let d = db(&[&[0, 10]]);
        Mcac::build(target(&[0], &[10], &d), &d);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]
            #[test]
            fn context_always_complete(
                rows in proptest::collection::vec(
                    proptest::collection::vec(prop_oneof![0u32..5, 10u32..13], 1..6), 1..15),
                n_drugs in 2usize..5,
            ) {
                let d = TransactionDb::new(
                    rows.into_iter().map(|t| t.into_iter().map(Item).collect()).collect(),
                );
                let drugs: ItemSet = (0..n_drugs as u32).map(Item).collect();
                let t = DrugAdrRule::from_parts(drugs, ItemSet::from_ids([10u32]), &d);
                let c = Mcac::build(t, &d);
                prop_assert!(c.context_is_complete());
                prop_assert_eq!(c.context_size(), (1 << n_drugs) - 2);
                // Levels strictly descending cardinality.
                let cards: Vec<usize> = c.levels.iter().map(|l| l.cardinality).collect();
                prop_assert!(cards.windows(2).all(|w| w[0] == w[1] + 1));
                let _ = ItemPartition::new(10); // partition consistent with item choice
            }
        }
    }
}
