//! Similar-interaction highlighting (thesis §4.1: "the system can
//! highlight drug-drug interactions that are similar to each other based on
//! the defined interestingness criteria").
//!
//! Two clusters are similar when they share drugs, share ADRs, and sit at
//! comparable exclusiveness — an analyst inspecting one signal wants its
//! neighbours (e.g. the same PPI pair with a different reaction subset, or
//! the same reaction triggered by an overlapping combination).

use crate::pipeline::AnalysisResult;
use maras_mining::ItemSet;

/// Weights of the similarity components (each in `[0, 1]`; they are
/// normalized by their sum).
#[derive(Debug, Clone, Copy)]
pub struct SimilarityWeights {
    /// Jaccard similarity of the drug sets.
    pub drugs: f64,
    /// Jaccard similarity of the ADR sets.
    pub adrs: f64,
    /// Closeness of the exclusiveness scores (`1 − |Δscore|`, clamped).
    pub score: f64,
}

impl Default for SimilarityWeights {
    fn default() -> Self {
        SimilarityWeights { drugs: 0.5, adrs: 0.35, score: 0.15 }
    }
}

/// Jaccard index of two itemsets; 1 for two empty sets.
pub fn jaccard(a: &ItemSet, b: &ItemSet) -> f64 {
    let inter = a.intersection(b).len();
    let union = a.union(b).len();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

/// Similarity of two ranked clusters under the given weights, in `[0, 1]`.
pub fn cluster_similarity(
    result: &AnalysisResult,
    rank_a: usize,
    rank_b: usize,
    w: &SimilarityWeights,
) -> f64 {
    let a = &result.ranked[rank_a];
    let b = &result.ranked[rank_b];
    let d = jaccard(&a.cluster.target.drugs, &b.cluster.target.drugs);
    let r = jaccard(&a.cluster.target.adrs, &b.cluster.target.adrs);
    let s = (1.0 - (a.score - b.score).abs()).clamp(0.0, 1.0);
    let total = w.drugs + w.adrs + w.score;
    if total == 0.0 {
        return 0.0;
    }
    (w.drugs * d + w.adrs * r + w.score * s) / total
}

/// The `k` clusters most similar to the one at `rank`, as
/// `(rank, similarity)` pairs in descending similarity (the queried cluster
/// itself is excluded). Deterministic tie-break on rank.
pub fn similar_clusters(
    result: &AnalysisResult,
    rank: usize,
    k: usize,
    w: &SimilarityWeights,
) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..result.ranked.len())
        .filter(|&r| r != rank)
        .map(|r| (r, cluster_similarity(result, rank, r, w)))
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};
    use maras_mining::ItemSet;

    #[test]
    fn jaccard_basics() {
        let a = ItemSet::from_ids([1u32, 2, 3]);
        let b = ItemSet::from_ids([2u32, 3, 4]);
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&a, &ItemSet::empty()), 0.0);
        assert_eq!(jaccard(&ItemSet::empty(), &ItemSet::empty()), 1.0);
    }

    #[test]
    fn neighbours_share_structure() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(55));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let result = Pipeline::new(PipelineConfig::default()).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        assert!(result.ranked.len() >= 5);
        let w = SimilarityWeights::default();
        let neighbours = similar_clusters(&result, 0, 3, &w);
        assert_eq!(neighbours.len(), 3);
        // Descending similarity, self excluded, all in range.
        assert!(neighbours.windows(2).all(|x| x[0].1 >= x[1].1));
        for &(r, s) in &neighbours {
            assert_ne!(r, 0);
            assert!((0.0..=1.0).contains(&s));
        }
        // The top neighbour must beat a random distant cluster on average.
        let far = cluster_similarity(&result, 0, result.ranked.len() - 1, &w);
        assert!(neighbours[0].1 >= far);
    }

    #[test]
    fn identical_targets_have_similarity_one() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(56));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let result = Pipeline::new(PipelineConfig::default()).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        let w = SimilarityWeights::default();
        let s = cluster_similarity(&result, 0, 0, &w);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_yield_zero() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(57));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let result = Pipeline::new(PipelineConfig::default()).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        let w = SimilarityWeights { drugs: 0.0, adrs: 0.0, score: 0.0 };
        assert_eq!(cluster_similarity(&result, 0, 1, &w), 0.0);
    }
}
