//! Demographic stratification of a mined signal (the bridge between the
//! pipeline's provenance and `maras-signals`' Mantel–Haenszel estimators).
//!
//! The §4.1 drill-down hands the evaluator "the relevant factors causing
//! the interaction, such as patient's age"; the statistical version of that
//! question is whether the signal survives stratification — a crude
//! association that evaporates under age/sex adjustment was confounded.

use crate::pipeline::AnalysisResult;
use maras_faers::model::Sex;
use maras_rules::DrugAdrRule;
use maras_signals::ContingencyTable;

/// How to partition reports into strata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stratifier {
    /// Age bands: <18, 18–44, 45–64, 65+, unknown.
    AgeBand,
    /// Female / male / unknown.
    Sex,
    /// Age band × sex (15 strata).
    AgeBandBySex,
}

const AGE_BANDS: usize = 5;

fn age_band(age: Option<f32>) -> usize {
    match age {
        Some(a) if a < 18.0 => 0,
        Some(a) if a < 45.0 => 1,
        Some(a) if a < 65.0 => 2,
        Some(_) => 3,
        None => 4,
    }
}

fn sex_band(sex: Sex) -> usize {
    match sex {
        Sex::Female => 0,
        Sex::Male => 1,
        Sex::Unknown => 2,
    }
}

impl Stratifier {
    /// Number of strata this partitioner produces.
    pub fn n_strata(self) -> usize {
        match self {
            Stratifier::AgeBand => AGE_BANDS,
            Stratifier::Sex => 3,
            Stratifier::AgeBandBySex => AGE_BANDS * 3,
        }
    }

    fn stratum_of(self, age: Option<f32>, sex: Sex) -> usize {
        match self {
            Stratifier::AgeBand => age_band(age),
            Stratifier::Sex => sex_band(sex),
            Stratifier::AgeBandBySex => age_band(age) * 3 + sex_band(sex),
        }
    }

    /// Human-readable stratum label.
    pub fn label(self, stratum: usize) -> String {
        let age = |b: usize| ["<18", "18-44", "45-64", "65+", "age?"][b];
        let sex = |b: usize| ["F", "M", "sex?"][b];
        match self {
            Stratifier::AgeBand => age(stratum).to_string(),
            Stratifier::Sex => sex(stratum).to_string(),
            Stratifier::AgeBandBySex => format!("{} {}", age(stratum / 3), sex(stratum % 3)),
        }
    }
}

/// Builds per-stratum 2×2 tables for a rule: exposure = the rule's full
/// drug set, event = its ADR set, each counted within the stratum's reports.
pub fn stratified_tables(
    result: &AnalysisResult,
    rule: &DrugAdrRule,
    stratifier: Stratifier,
) -> Vec<ContingencyTable> {
    let db = &result.encoded.db;
    let n = db.len();
    // Stratum of each tid, via the raw report's demographics.
    let mut stratum_of_tid = Vec::with_capacity(n);
    for tid in 0..n {
        let report = &result.quarter.reports[result.encoded.source_indices[tid]];
        stratum_of_tid.push(stratifier.stratum_of(report.age, report.sex));
    }

    let exposed = db.cover_tids(&rule.drugs);
    let event = db.cover_tids(&rule.adrs);
    let joint = db.cover_tids(&rule.complete_itemset());

    let mut totals = vec![0u64; stratifier.n_strata()];
    let mut exp = vec![0u64; stratifier.n_strata()];
    let mut evt = vec![0u64; stratifier.n_strata()];
    let mut jnt = vec![0u64; stratifier.n_strata()];
    for tid in 0..n as u32 {
        totals[stratum_of_tid[tid as usize]] += 1;
    }
    for &tid in &exposed {
        exp[stratum_of_tid[tid as usize]] += 1;
    }
    for &tid in &event {
        evt[stratum_of_tid[tid as usize]] += 1;
    }
    for &tid in &joint {
        jnt[stratum_of_tid[tid as usize]] += 1;
    }

    (0..stratifier.n_strata())
        .map(|s| {
            ContingencyTable::from_supports(jnt[s], exp[s], evt[s], totals[s])
                .expect("per-stratum counts tallied from one partition are consistent")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};
    use maras_signals::{mantel_haenszel_or, SignalScores};

    #[test]
    fn strata_partition_the_database() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(88));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let result = Pipeline::new(PipelineConfig::default()).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        let rule = result.ranked[0].cluster.target.clone();
        for stratifier in [Stratifier::AgeBand, Stratifier::Sex, Stratifier::AgeBandBySex] {
            let tables = stratified_tables(&result, &rule, stratifier);
            assert_eq!(tables.len(), stratifier.n_strata());
            // Strata partition reports, exposures and joint counts exactly.
            let total_n: u64 = tables.iter().map(|t| t.n()).sum();
            assert_eq!(total_n, result.encoded.db.len() as u64, "{stratifier:?}");
            let total_joint: u64 = tables.iter().map(|t| t.a).sum();
            assert_eq!(total_joint, rule.support(), "{stratifier:?}");
        }
    }

    #[test]
    fn mh_estimate_is_finite_and_positive_for_top_signal() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(89));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let result = Pipeline::new(PipelineConfig::default().with_min_support(6)).run(
            quarter,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        let rule = result.ranked[0].cluster.target.clone();
        let tables = stratified_tables(&result, &rule, Stratifier::AgeBand);
        let adjusted = mantel_haenszel_or(&tables);
        // The generator assigns demographics independently of reactions, so
        // a real signal must survive stratification.
        assert!(adjusted > 1.0, "adjusted OR should stay a signal: {adjusted}");
        // And the crude score agrees it is a signal at all.
        let crude = SignalScores::from_table(ContingencyTable::from_db(
            &result.encoded.db,
            &rule.drugs,
            &rule.adrs,
        ));
        assert!(crude.rrr > 1.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Stratifier::AgeBand.label(0), "<18");
        assert_eq!(Stratifier::AgeBand.label(4), "age?");
        assert_eq!(Stratifier::Sex.label(1), "M");
        assert_eq!(Stratifier::AgeBandBySex.label(0), "<18 F");
        assert_eq!(Stratifier::AgeBandBySex.label(14), "age? sex?");
        assert_eq!(Stratifier::AgeBandBySex.n_strata(), 15);
    }

    #[test]
    fn band_edges() {
        assert_eq!(age_band(Some(17.9)), 0);
        assert_eq!(age_band(Some(18.0)), 1);
        assert_eq!(age_band(Some(44.9)), 1);
        assert_eq!(age_band(Some(45.0)), 2);
        assert_eq!(age_band(Some(65.0)), 3);
        assert_eq!(age_band(None), 4);
    }
}
