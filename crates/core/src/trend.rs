//! Cross-quarter signal tracking.
//!
//! The thesis mines each FAERS quarter independently (§5.1 publishes
//! quarterly); a safety evaluator then watches how a signal *evolves*: a
//! combination that keeps (re)appearing with rising support and a stable
//! high exclusiveness is the reinforcement pattern that triggers escalation,
//! while a one-quarter blip is likely noise. [`TrendTracker`] joins ranked
//! outputs across quarters on the (drug set, ADR set) key and classifies
//! each signal's trajectory.

use crate::pipeline::AnalysisResult;
use maras_faers::QuarterId;
use maras_mining::ItemSet;
use rustc_hash::FxHashMap;
use serde::Serialize;

/// One quarter's observation of a signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TrendPoint {
    /// Which quarter.
    pub quarter: QuarterId,
    /// 0-based rank in that quarter's output (`None` = not mined).
    pub rank: Option<usize>,
    /// Exclusiveness score (`None` = not mined).
    pub score: Option<f64>,
    /// Absolute support in that quarter (0 = not mined).
    pub support: u64,
}

/// A signal's cross-quarter trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct SignalTrend {
    /// Drug item set (in the shared encoding).
    pub drugs: ItemSet,
    /// ADR item set.
    pub adrs: ItemSet,
    /// One point per tracked quarter, in feed order.
    pub points: Vec<TrendPoint>,
}

impl SignalTrend {
    /// Number of quarters in which the signal was mined at all.
    pub fn quarters_present(&self) -> usize {
        self.points.iter().filter(|p| p.rank.is_some()).count()
    }

    /// Whether support strictly increases across every consecutive pair of
    /// quarters where the signal is present (the *emerging* pattern).
    pub fn is_emerging(&self) -> bool {
        let supports: Vec<u64> =
            self.points.iter().filter(|p| p.rank.is_some()).map(|p| p.support).collect();
        supports.len() >= 2 && supports.windows(2).all(|w| w[1] > w[0])
    }

    /// Whether the signal is present in every tracked quarter — the
    /// *persistent* pattern an evaluator escalates on.
    pub fn is_persistent(&self) -> bool {
        !self.points.is_empty() && self.quarters_present() == self.points.len()
    }

    /// Mean exclusiveness over the quarters where the signal is present
    /// (0 when never present).
    pub fn mean_score(&self) -> f64 {
        let scores: Vec<f64> = self.points.iter().filter_map(|p| p.score).collect();
        if scores.is_empty() {
            0.0
        } else {
            scores.iter().sum::<f64>() / scores.len() as f64
        }
    }
}

/// Joins ranked outputs across quarters.
#[derive(Debug, Default)]
pub struct TrendTracker {
    quarters: Vec<QuarterId>,
    signals: FxHashMap<(ItemSet, ItemSet), Vec<TrendPoint>>,
}

impl TrendTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests one quarter's analysis. Quarters must be fed in
    /// chronological order; every signal absent from a fed quarter gets an
    /// explicit absent point, so all trajectories stay aligned.
    pub fn ingest(&mut self, quarter: QuarterId, result: &AnalysisResult) {
        let idx = self.quarters.len();
        self.quarters.push(quarter);
        for (rank, r) in result.ranked.iter().enumerate() {
            let key = (r.cluster.target.drugs.clone(), r.cluster.target.adrs.clone());
            let points = self.signals.entry(key).or_default();
            // Pad with absent points for quarters before first sighting.
            while points.len() < idx {
                points.push(TrendPoint {
                    quarter: self.quarters[points.len()],
                    rank: None,
                    score: None,
                    support: 0,
                });
            }
            points.push(TrendPoint {
                quarter,
                rank: Some(rank),
                score: Some(r.score),
                support: r.cluster.target.support(),
            });
        }
        // Pad signals not seen this quarter.
        for points in self.signals.values_mut() {
            while points.len() <= idx {
                points.push(TrendPoint {
                    quarter: self.quarters[points.len()],
                    rank: None,
                    score: None,
                    support: 0,
                });
            }
        }
    }

    /// Records a quarter that produced no analysis (failed ingest): every
    /// tracked signal gets an explicit absent point, so trajectories stay
    /// aligned with the full run even when quarters drop out.
    pub fn skip_quarter(&mut self, quarter: QuarterId) {
        let idx = self.quarters.len();
        self.quarters.push(quarter);
        for points in self.signals.values_mut() {
            while points.len() <= idx {
                points.push(TrendPoint {
                    quarter: self.quarters[points.len()],
                    rank: None,
                    score: None,
                    support: 0,
                });
            }
        }
    }

    /// All tracked trajectories, best mean score first (deterministic
    /// tie-break on the signal key).
    pub fn trends(&self) -> Vec<SignalTrend> {
        let mut out: Vec<SignalTrend> = self
            .signals
            .iter()
            .map(|((drugs, adrs), points)| SignalTrend {
                drugs: drugs.clone(),
                adrs: adrs.clone(),
                points: points.clone(),
            })
            .collect();
        out.sort_by(|a, b| {
            b.mean_score()
                .partial_cmp(&a.mean_score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.drugs.cmp(&b.drugs))
                .then_with(|| a.adrs.cmp(&b.adrs))
        });
        out
    }

    /// The trajectory of one specific signal, if ever mined.
    pub fn trend_of(&self, drugs: &ItemSet, adrs: &ItemSet) -> Option<SignalTrend> {
        self.signals.get(&(drugs.clone(), adrs.clone())).map(|points| SignalTrend {
            drugs: drugs.clone(),
            adrs: adrs.clone(),
            points: points.clone(),
        })
    }

    /// Signals present in ≥ `min_quarters` quarters with strictly growing
    /// support — the escalation shortlist.
    pub fn emerging(&self, min_quarters: usize) -> Vec<SignalTrend> {
        self.trends()
            .into_iter()
            .filter(|t| t.quarters_present() >= min_quarters && t.is_emerging())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn run_year() -> (TrendTracker, Synthesizer) {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(77));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let pipeline = Pipeline::new(PipelineConfig::default());
        let mut tracker = TrendTracker::new();
        for quarter in synth.generate_year(2014) {
            let id = quarter.id;
            let result = pipeline.run(quarter, &dv, &av);
            tracker.ingest(id, &result);
        }
        (tracker, synth)
    }

    #[test]
    fn all_trajectories_span_all_quarters() {
        let (tracker, _) = run_year();
        let trends = tracker.trends();
        assert!(!trends.is_empty());
        for t in &trends {
            assert_eq!(t.points.len(), 4, "trajectory not aligned: {t:?}");
            assert!(t.quarters_present() >= 1);
            let quarters: Vec<u8> = t.points.iter().map(|p| p.quarter.quarter).collect();
            assert_eq!(quarters, vec![1, 2, 3, 4]);
        }
        // Sorted by mean score.
        assert!(trends.windows(2).all(|w| w[0].mean_score() >= w[1].mean_score()));
    }

    #[test]
    fn planted_interactions_tend_to_persist() {
        let (tracker, synth) = run_year();
        let truth = synth.planted_truth();
        let adr_start = synth.drug_vocab().len() as u32;
        let mut persistent = 0;
        for (drugs, adrs) in &truth {
            // The mined consequent may be a superset (closure); look for
            // any trajectory with the exact drug set covering the ADRs.
            let found = tracker.trends().into_iter().any(|t| {
                t.drugs.iter().map(|i| i.0).eq(drugs.iter().copied())
                    && adrs.iter().all(|&a| t.adrs.iter().any(|i| i.0 == a + adr_start))
                    && t.quarters_present() >= 3
            });
            if found {
                persistent += 1;
            }
        }
        assert!(
            persistent >= 3,
            "at least half the planted interactions should persist across quarters, got {persistent}"
        );
    }

    #[test]
    fn emerging_requires_growing_support() {
        let t = SignalTrend {
            drugs: ItemSet::from_ids([0u32, 1]),
            adrs: ItemSet::from_ids([10u32]),
            points: vec![
                TrendPoint {
                    quarter: QuarterId::new(2014, 1),
                    rank: Some(5),
                    score: Some(0.4),
                    support: 4,
                },
                TrendPoint {
                    quarter: QuarterId::new(2014, 2),
                    rank: Some(3),
                    score: Some(0.5),
                    support: 9,
                },
                TrendPoint {
                    quarter: QuarterId::new(2014, 3),
                    rank: Some(1),
                    score: Some(0.6),
                    support: 15,
                },
            ],
        };
        assert!(t.is_emerging());
        assert!(t.is_persistent());
        assert!((t.mean_score() - 0.5).abs() < 1e-12);

        let flat = SignalTrend {
            points: vec![
                TrendPoint {
                    quarter: QuarterId::new(2014, 1),
                    rank: Some(5),
                    score: Some(0.4),
                    support: 9,
                },
                TrendPoint {
                    quarter: QuarterId::new(2014, 2),
                    rank: Some(3),
                    score: Some(0.5),
                    support: 9,
                },
            ],
            ..t.clone()
        };
        assert!(!flat.is_emerging());

        let gap = SignalTrend {
            points: vec![
                TrendPoint {
                    quarter: QuarterId::new(2014, 1),
                    rank: Some(5),
                    score: Some(0.4),
                    support: 4,
                },
                TrendPoint {
                    quarter: QuarterId::new(2014, 2),
                    rank: None,
                    score: None,
                    support: 0,
                },
                TrendPoint {
                    quarter: QuarterId::new(2014, 3),
                    rank: Some(1),
                    score: Some(0.6),
                    support: 15,
                },
            ],
            ..t.clone()
        };
        assert!(!gap.is_persistent());
        assert_eq!(gap.quarters_present(), 2);
        assert!(gap.is_emerging(), "absent quarters are skipped in the support series");
    }

    #[test]
    fn trend_of_finds_specific_signal() {
        let (tracker, _) = run_year();
        let any = &tracker.trends()[0];
        let found = tracker.trend_of(&any.drugs, &any.adrs).expect("present");
        assert_eq!(found.points.len(), 4);
        assert!(tracker
            .trend_of(&ItemSet::from_ids([9999u32]), &ItemSet::from_ids([10000u32]))
            .is_none());
    }
}
