//! Rule search & filtering — the headless version of the §4.1 interface's
//! "Highlighting interesting drug-drug interactions" panel: search by a
//! specific drug, a drug combination, or an ADR; restrict by severity; and
//! restrict to interactions absent from the knowledge base.

use crate::knowledge::KnowledgeBase;
use crate::link::rule_max_severity;
use crate::pipeline::AnalysisResult;
use maras_faers::{CleanConfig, Vocabulary};

/// Canonicalizes one raw query term against a vocabulary the same way the
/// ingest cleaner resolves report strings (§5.2 step 1): whitespace folding,
/// exact match, case-folded exact match, then bounded BK-tree fuzzy lookup.
/// Terms that resolve nowhere are returned uppercased, which (like the
/// legacy scan behaviour for unknown names) matches nothing.
pub fn canonical_query_term(raw: &str, vocab: &Vocabulary) -> String {
    let max_dist = CleanConfig::default().max_edit_distance;
    let trimmed: String = raw.split_whitespace().collect::<Vec<_>>().join(" ");
    if let Some(id) = vocab.id_of(&trimmed) {
        return vocab.term(id).to_string();
    }
    let upper = trimmed.to_ascii_uppercase();
    if let Some(id) = vocab.id_of(&upper) {
        return vocab.term(id).to_string();
    }
    // Fuzzy-match both the verbatim and the case-folded spelling and keep
    // the closer hit (ties prefer the verbatim form for determinism).
    let best = match (vocab.nearest(&trimmed, max_dist), vocab.nearest(&upper, max_dist)) {
        (Some(a), Some(b)) => Some(if b.1 < a.1 { b } else { a }),
        (a, b) => a.or(b),
    };
    match best {
        Some((id, _)) => vocab.term(id).to_string(),
        None => upper,
    }
}

/// A composable filter over the ranked clusters.
#[derive(Debug, Clone, Default)]
pub struct RuleQuery {
    /// Drugs that must all appear in the antecedent (canonical names).
    pub require_drugs: Vec<String>,
    /// If non-empty, at least one of these ADR terms must appear.
    pub any_adr: Vec<String>,
    /// Minimum exclusiveness score.
    pub min_score: Option<f64>,
    /// Minimum severity (0–6, see `Outcome::severity`) among supporting
    /// reports.
    pub min_severity: Option<u8>,
    /// Exact drug-combination cardinality, if constrained.
    pub n_drugs: Option<usize>,
    /// Keep only interactions *not* documented in the knowledge base.
    pub unknown_only: bool,
    /// Keep only interactions carrying at least one ADR absent from every
    /// constituent drug's label — the "unknown ADR" preference (§1.3).
    pub novel_adr_only: bool,
    /// Minimum PRR point estimate in the cluster's score block.
    pub min_prr: Option<f64>,
    /// Minimum ROR point estimate in the cluster's score block.
    pub min_ror: Option<f64>,
}

impl RuleQuery {
    /// A fresh, match-everything query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requires a drug in the antecedent.
    pub fn with_drug(mut self, name: &str) -> Self {
        self.require_drugs.push(name.to_ascii_uppercase());
        self
    }

    /// Requires one of the given ADR terms in the consequent.
    pub fn with_any_adr(mut self, term: &str) -> Self {
        self.any_adr.push(term.to_string());
        self
    }

    /// Requires a minimum exclusiveness score.
    pub fn with_min_score(mut self, score: f64) -> Self {
        self.min_score = Some(score);
        self
    }

    /// Requires a minimum outcome severity among supporting reports.
    pub fn with_min_severity(mut self, severity: u8) -> Self {
        self.min_severity = Some(severity);
        self
    }

    /// Requires an exact antecedent size.
    pub fn with_n_drugs(mut self, n: usize) -> Self {
        self.n_drugs = Some(n);
        self
    }

    /// Keeps only undocumented interactions.
    pub fn unknown_only(mut self) -> Self {
        self.unknown_only = true;
        self
    }

    /// Keeps only interactions with at least one unlabeled ADR.
    pub fn novel_adr_only(mut self) -> Self {
        self.novel_adr_only = true;
        self
    }

    /// Requires a minimum PRR point estimate.
    pub fn with_min_prr(mut self, prr: f64) -> Self {
        self.min_prr = Some(prr);
        self
    }

    /// Requires a minimum ROR point estimate.
    pub fn with_min_ror(mut self, ror: f64) -> Self {
        self.min_ror = Some(ror);
        self
    }

    /// Returns a copy of the query with `require_drugs` and `any_adr`
    /// canonicalized through the vocabularies (BK-tree spelling
    /// correction), so near-miss spellings in queries resolve exactly like
    /// report strings do at ingest. [`RuleQuery::apply`] calls this
    /// internally; the indexed serving path reuses it so scan and index
    /// share one resolution rule.
    pub fn resolved(&self, drug_vocab: &Vocabulary, adr_vocab: &Vocabulary) -> RuleQuery {
        let mut q = self.clone();
        q.require_drugs = self
            .require_drugs
            .iter()
            .map(|d| canonical_query_term(d, drug_vocab).to_ascii_uppercase())
            .collect();
        q.any_adr = self.any_adr.iter().map(|a| canonical_query_term(a, adr_vocab)).collect();
        q
    }

    /// Applies the query, returning 0-based ranks (ascending = best first)
    /// of the clusters that match.
    pub fn apply(
        &self,
        result: &AnalysisResult,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
        kb: Option<&KnowledgeBase>,
    ) -> Vec<usize> {
        let q = self.resolved(drug_vocab, adr_vocab);
        let mut out = Vec::new();
        'outer: for (rank, r) in result.ranked.iter().enumerate() {
            let t = &r.cluster.target;
            if let Some(n) = self.n_drugs {
                if t.drugs.len() != n {
                    continue;
                }
            }
            if let Some(min) = self.min_score {
                if r.score < min {
                    continue;
                }
            }
            if let Some(min) = self.min_prr {
                if r.scores.prr.estimate < min {
                    continue;
                }
            }
            if let Some(min) = self.min_ror {
                if r.scores.ror.estimate < min {
                    continue;
                }
            }
            let drug_names: Vec<String> = result
                .encoded
                .names(&t.drugs, drug_vocab, adr_vocab)
                .into_iter()
                .map(|n| n.to_ascii_uppercase())
                .collect();
            for need in &q.require_drugs {
                if !drug_names.contains(need) {
                    continue 'outer;
                }
            }
            if !q.any_adr.is_empty() {
                let adr_names = result.encoded.names(&t.adrs, drug_vocab, adr_vocab);
                if !q.any_adr.iter().any(|want| adr_names.iter().any(|have| have == want)) {
                    continue;
                }
            }
            if let Some(min_sev) = self.min_severity {
                let sev = rule_max_severity(result, t).map_or(0, |o| o.severity());
                if sev < min_sev {
                    continue;
                }
            }
            if self.unknown_only || self.novel_adr_only {
                if let Some(kb) = kb {
                    let refs: Vec<&str> = drug_names.iter().map(String::as_str).collect();
                    if self.unknown_only && kb.is_known(&refs) {
                        continue;
                    }
                    if self.novel_adr_only {
                        let adr_names = result.encoded.names(&t.adrs, drug_vocab, adr_vocab);
                        let adr_refs: Vec<&str> = adr_names.iter().map(String::as_str).collect();
                        if !kb.has_novel_adr(&refs, &adr_refs) {
                            continue;
                        }
                    }
                }
            }
            out.push(rank);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn fixture() -> (AnalysisResult, Vocabulary, Vocabulary) {
        let mut cfg = SynthConfig::test_scale(17);
        cfg.n_reports = 1500;
        let mut synth = Synthesizer::new(cfg);
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        (result, dv, av)
    }

    #[test]
    fn empty_query_matches_everything_in_rank_order() {
        let (result, dv, av) = fixture();
        let hits = RuleQuery::new().apply(&result, &dv, &av, None);
        assert_eq!(hits.len(), result.ranked.len());
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn drug_filter_restricts_to_that_drug() {
        let (result, dv, av) = fixture();
        // Pick a drug from the top cluster so the filter has hits.
        let top_drugs = result.encoded.names(&result.ranked[0].cluster.target.drugs, &dv, &av);
        let q = RuleQuery::new().with_drug(&top_drugs[0]);
        let hits = q.apply(&result, &dv, &av, None);
        assert!(!hits.is_empty());
        for rank in hits {
            let names = result.encoded.names(&result.ranked[rank].cluster.target.drugs, &dv, &av);
            assert!(names.iter().any(|n| n.eq_ignore_ascii_case(&top_drugs[0])));
        }
    }

    #[test]
    fn score_and_cardinality_filters() {
        let (result, dv, av) = fixture();
        let median = result.ranked[result.ranked.len() / 2].score;
        let hits = RuleQuery::new().with_min_score(median).apply(&result, &dv, &av, None);
        assert!(hits.iter().all(|&r| result.ranked[r].score >= median));
        let two = RuleQuery::new().with_n_drugs(2).apply(&result, &dv, &av, None);
        assert!(two.iter().all(|&r| result.ranked[r].cluster.n_drugs() == 2));
    }

    #[test]
    fn disproportionality_filters_restrict_by_score_block() {
        let (result, dv, av) = fixture();
        let mut prrs: Vec<f64> = result.ranked.iter().map(|r| r.scores.prr.estimate).collect();
        prrs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median_prr = prrs[prrs.len() / 2];
        let hits = RuleQuery::new().with_min_prr(median_prr).apply(&result, &dv, &av, None);
        assert!(!hits.is_empty());
        assert!(hits.len() < result.ranked.len());
        assert!(hits.iter().all(|&r| result.ranked[r].scores.prr.estimate >= median_prr));
        let ror_hits = RuleQuery::new().with_min_ror(1.0).apply(&result, &dv, &av, None);
        assert!(ror_hits.iter().all(|&r| result.ranked[r].scores.ror.estimate >= 1.0));
        // An impossible threshold matches nothing (post-correction all
        // estimates are finite).
        assert!(RuleQuery::new()
            .with_min_prr(f64::INFINITY)
            .apply(&result, &dv, &av, None)
            .is_empty());
    }

    #[test]
    fn unknown_only_drops_documented_interactions() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::literature_validated();
        let all = RuleQuery::new().apply(&result, &dv, &av, None);
        let unknown = RuleQuery::new().unknown_only().apply(&result, &dv, &av, Some(&kb));
        assert!(unknown.len() <= all.len());
        for rank in unknown {
            let names: Vec<String> =
                result.encoded.names(&result.ranked[rank].cluster.target.drugs, &dv, &av);
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            assert!(!kb.is_known(&refs));
        }
    }

    #[test]
    fn novel_adr_filter_drops_fully_labeled_consequents() {
        let (result, dv, av) = fixture();
        let mut kb = KnowledgeBase::new();
        // Label every ADR of the top cluster on its first drug: the top
        // cluster then has no novel ADR and must be filtered out.
        let top = &result.ranked[0].cluster.target;
        let drugs = result.encoded.names(&top.drugs, &dv, &av);
        for adr in result.encoded.names(&top.adrs, &dv, &av) {
            kb.add_label(&drugs[0], &adr);
        }
        let hits = RuleQuery::new().novel_adr_only().apply(&result, &dv, &av, Some(&kb));
        assert!(!hits.contains(&0), "fully-labeled top cluster must be dropped");
        // With an empty KB everything has novel ADRs.
        let empty = KnowledgeBase::new();
        let all = RuleQuery::new().novel_adr_only().apply(&result, &dv, &av, Some(&empty));
        assert_eq!(all.len(), result.ranked.len());
    }

    #[test]
    fn severity_filter_is_monotone() {
        let (result, dv, av) = fixture();
        let lo = RuleQuery::new().with_min_severity(1).apply(&result, &dv, &av, None);
        let hi = RuleQuery::new().with_min_severity(6).apply(&result, &dv, &av, None);
        assert!(hi.len() <= lo.len());
        for rank in &hi {
            assert!(lo.contains(rank));
        }
    }

    #[test]
    fn canonical_query_term_matches_ingest_resolution() {
        let dv = Vocabulary::drugs(200);
        let av = Vocabulary::adrs(160);
        assert_eq!(canonical_query_term("IBUPROFEN", &dv), "IBUPROFEN");
        assert_eq!(canonical_query_term("IBUPROFFEN", &dv), "IBUPROFEN");
        assert_eq!(canonical_query_term("ibuprofen", &dv), "IBUPROFEN");
        assert_eq!(canonical_query_term("  Acute   renal failure ", &av), "Acute renal failure");
        assert_eq!(canonical_query_term("acute renal failure", &av), "Acute renal failure");
        assert_eq!(canonical_query_term("Acute renal failur", &av), "Acute renal failure");
        // Unresolvable terms fall back to the legacy uppercased form.
        assert_eq!(canonical_query_term("QQQQQQQQQQQ", &dv), "QQQQQQQQQQQ");
    }

    #[test]
    fn near_miss_query_spellings_resolve_like_ingest() {
        let (result, dv, av) = fixture();
        let exact = RuleQuery::new().with_drug("IBUPROFEN").apply(&result, &dv, &av, None);
        let typo = RuleQuery::new().with_drug("IBUPROFFEN").apply(&result, &dv, &av, None);
        assert_eq!(exact, typo);
        let exact = RuleQuery::new().with_any_adr("Pain").apply(&result, &dv, &av, None);
        let typo = RuleQuery::new().with_any_adr("pain").apply(&result, &dv, &av, None);
        assert_eq!(exact, typo);
    }

    #[test]
    fn adr_filter_matches_consequents() {
        let (result, dv, av) = fixture();
        let top_adrs = result.encoded.names(&result.ranked[0].cluster.target.adrs, &dv, &av);
        let hits = RuleQuery::new().with_any_adr(&top_adrs[0]).apply(&result, &dv, &av, None);
        assert!(hits.contains(&0));
    }
}
