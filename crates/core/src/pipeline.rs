//! The MARAS pipeline: clean → encode → mine → cluster → rank.

use crate::config::PipelineConfig;
use crate::encode::{encode_reports, Encoded};
use maras_faers::{CleanedReport, Cleaner, CleaningStats, QuarterData, Vocabulary};
use maras_mcac::{rank_clusters_with, RankedMcac};
use maras_mining::PatternStore;
use maras_obs::{Event, Level};
use maras_rules::{rule_space, RuleSpaceCounts};
use maras_signals::SignalScores;
use serde::Serialize;
use std::time::Instant;

/// Emits the per-phase flight-recorder event batch runs log at Info.
fn phase_event(quarter: &str, phase: &str, out: usize, started: Instant) {
    Event::new(Level::Info, "pipeline.phase")
        .field("quarter", quarter)
        .field("phase", phase)
        .field("out", out)
        .field("elapsed_us", started.elapsed().as_micros() as u64)
        .emit();
}

/// Runs MARAS over quarters of FAERS data.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full analysis over one quarter.
    ///
    /// The returned [`AnalysisResult`] owns the (possibly EXP-filtered)
    /// quarter so rules can always be traced back to raw reports.
    pub fn run(
        &self,
        quarter: QuarterData,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
    ) -> AnalysisResult {
        let mut cleaner = Cleaner::new(drug_vocab, adr_vocab, self.config.clean.clone());
        self.run_with_cleaner(quarter, &mut cleaner)
    }

    /// [`Self::run`] with a caller-supplied [`Cleaner`].
    ///
    /// Multi-quarter drivers pass one cleaner for the whole run so the
    /// drug/ADR canonicalization memos carry across quarters — repeated
    /// verbatim strings pay the fuzzy vocabulary search once per run, not
    /// once per quarter. The cleaner's own `CleanConfig` governs cleaning;
    /// build it from [`PipelineConfig::clean`] to match [`Self::run`].
    pub fn run_with_cleaner(
        &self,
        quarter: QuarterData,
        cleaner: &mut Cleaner<'_>,
    ) -> AnalysisResult {
        let (drug_vocab, adr_vocab) = (cleaner.drug_vocab(), cleaner.adr_vocab());

        // 1. §5.1 selection.
        let quarter = if self.config.expedited_only { quarter.expedited_only() } else { quarter };
        let qid = quarter.id.to_string();

        // 2. §5.2 step 1: clean.
        let t = Instant::now();
        let (cleaned, cleaning) = cleaner.clean_quarter(&quarter);
        phase_event(&qid, "clean", cleaned.len(), t);

        // 3. Encode into the item space.
        let t = Instant::now();
        let encode_span = maras_obs::span("encode");
        let encoded = encode_reports(&cleaned, drug_vocab, adr_vocab);
        drop(encode_span);
        phase_event(&qid, "encode", encoded.db.len(), t);

        // 4. §5.2 steps 2–3: one shared mining pass produces the Fig. 5.1
        //    rule-space accounting, the closed-pattern store, and the
        //    multi-drug target rules (the legacy path re-mined the quarter
        //    once per artifact).
        let t = Instant::now();
        let space = rule_space(
            &encoded.db,
            &encoded.partition,
            self.config.min_support,
            self.config.effective_threads(),
        );
        phase_event(&qid, "mine", space.multi_drug_rules.len(), t);

        // 5. §5.2 step 4: MCACs with their full signal-score blocks, ranked
        //    under the configured key (exclusiveness by default). The score
        //    engine shards the batch across the same worker count as mining.
        let t = Instant::now();
        let ranked = rank_clusters_with(
            space.multi_drug_rules,
            &encoded.db,
            self.config.ranking_method(),
            self.config.effective_threads(),
        );
        phase_event(&qid, "score", ranked.len(), t);

        AnalysisResult {
            quarter,
            cleaned,
            cleaning,
            encoded,
            counts: space.counts,
            closed_patterns: space.closed,
            ranked,
        }
    }
}

/// Everything one quarter's analysis produced, with full provenance.
#[derive(Debug)]
pub struct AnalysisResult {
    /// The analyzed quarter (after the EXP filter, if enabled).
    pub quarter: QuarterData,
    /// Cleaned, abstracted reports (aligned with transaction tids).
    pub cleaned: Vec<CleanedReport>,
    /// What cleaning did.
    pub cleaning: CleaningStats,
    /// Transaction database + partition + tid provenance.
    pub encoded: Encoded,
    /// Fig. 5.1-style rule-space sizes.
    pub counts: RuleSpaceCounts,
    /// Closed frequent patterns in the arena store (support desc, items asc),
    /// the §5.2 step-2 artifact downstream consumers can borrow slices from.
    pub closed_patterns: PatternStore,
    /// MCACs in descending order of the configured ranking key, each
    /// carrying its full disproportionality score block.
    pub ranked: Vec<RankedMcac>,
}

impl AnalysisResult {
    /// The top `k` clusters (fewer if the ranking is shorter).
    pub fn top(&self, k: usize) -> &[RankedMcac] {
        &self.ranked[..k.min(self.ranked.len())]
    }

    /// Human-readable view of the `rank`-th cluster (0-based).
    ///
    /// # Panics
    /// Panics if `rank` is out of range; use [`Self::try_view`] when the rank
    /// comes from untrusted input (CLI flags, HTTP paths).
    pub fn view(&self, rank: usize, drug_vocab: &Vocabulary, adr_vocab: &Vocabulary) -> RuleView {
        self.try_view(rank, drug_vocab, adr_vocab).expect("rank out of range")
    }

    /// Checked variant of [`Self::view`]: `None` when `rank` exceeds the
    /// ranking instead of panicking.
    pub fn try_view(
        &self,
        rank: usize,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
    ) -> Option<RuleView> {
        let r = self.ranked.get(rank)?;
        let t = &r.cluster.target;
        Some(RuleView {
            rank: rank + 1,
            drugs: self.encoded.names(&t.drugs, drug_vocab, adr_vocab),
            adrs: self.encoded.names(&t.adrs, drug_vocab, adr_vocab),
            score: r.score,
            support: t.support(),
            confidence: t.confidence(),
            lift: t.lift(),
            scores: r.scores,
        })
    }

    /// Views of the top `k` clusters.
    pub fn views(
        &self,
        k: usize,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
    ) -> Vec<RuleView> {
        (0..k.min(self.ranked.len())).map(|i| self.view(i, drug_vocab, adr_vocab)).collect()
    }

    /// Position (0-based rank) of the cluster whose target matches the given
    /// canonical drug names and ADR terms exactly, if mined.
    pub fn rank_of(
        &self,
        drugs: &[&str],
        adrs: &[&str],
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
    ) -> Option<usize> {
        let want_drugs: Option<Vec<u32>> = drugs.iter().map(|d| drug_vocab.id_of(d)).collect();
        let want_adrs: Option<Vec<u32>> = adrs.iter().map(|a| adr_vocab.id_of(a)).collect();
        let (mut want_drugs, mut want_adrs) = (want_drugs?, want_adrs?);
        want_drugs.sort_unstable();
        want_adrs.sort_unstable();
        self.ranked.iter().position(|r| {
            let t = &r.cluster.target;
            t.drugs.iter().map(|i| i.0).eq(want_drugs.iter().copied())
                && t.adrs
                    .iter()
                    .map(|i| self.encoded.partition.adr_index(i))
                    .eq(want_adrs.iter().copied())
        })
    }
}

/// A display-ready row of the ranked output (what the §4.1 interface lists).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RuleView {
    /// 1-based rank.
    pub rank: usize,
    /// Canonical drug names of the antecedent.
    pub drugs: Vec<String>,
    /// Canonical ADR terms of the consequent.
    pub adrs: Vec<String>,
    /// Score under the run's ranking key (exclusiveness by default).
    pub score: f64,
    /// Absolute support.
    pub support: u64,
    /// Confidence.
    pub confidence: f64,
    /// Lift.
    pub lift: f64,
    /// Full disproportionality block (RRR, PRR/ROR with CIs, χ², IC, EBGM,
    /// interaction contrast, exclusiveness).
    pub scores: SignalScores,
}

impl std::fmt::Display for RuleView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} [{}] => [{}] score={:.4} sup={} conf={:.3} lift={:.1}",
            self.rank,
            self.drugs.join(" + "),
            self.adrs.join(", "),
            self.score,
            self.support,
            self.confidence,
            self.lift
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_faers::{PlantedInteraction, SynthConfig, Synthesizer};

    fn run_small() -> (AnalysisResult, Vocabulary, Vocabulary) {
        let mut cfg = SynthConfig::test_scale(11);
        cfg.n_reports = 1200;
        // Boost a single planted interaction to make the test sharp.
        cfg.interactions = vec![PlantedInteraction {
            co_report_rate: 0.01,
            ..PlantedInteraction::new(&["IBUPROFEN", "METAMIZOLE"], &["Acute renal failure"])
        }];
        let mut synth = Synthesizer::new(cfg);
        let quarter = synth.generate_quarter(maras_faers::QuarterId::new(2014, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        (result, dv, av)
    }

    #[test]
    fn pipeline_end_to_end_recovers_planted_interaction() {
        let (result, dv, av) = run_small();
        assert!(result.counts.mcacs > 0, "no MCACs mined: {:?}", result.counts);
        assert!(!result.ranked.is_empty());
        let rank = result
            .rank_of(&["IBUPROFEN", "METAMIZOLE"], &["Acute renal failure"], &dv, &av)
            .expect("planted interaction must be mined");
        // It should be in the leading ranks of the list.
        assert!(
            rank < result.ranked.len().div_ceil(5),
            "planted interaction ranked {rank} of {}",
            result.ranked.len()
        );
    }

    #[test]
    fn views_are_displayable_and_ordered() {
        let (result, dv, av) = run_small();
        let views = result.views(5, &dv, &av);
        assert!(!views.is_empty());
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.rank, i + 1);
            assert!(!v.drugs.is_empty());
            assert!(!v.adrs.is_empty());
            let s = v.to_string();
            assert!(s.contains("=>"), "{s}");
        }
        let scores: Vec<f64> = views.iter().map(|v| v.score).collect();
        assert!(scores.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn exp_filter_reduces_reports() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(3));
        let quarter = synth.generate_quarter(maras_faers::QuarterId::new(2014, 1));
        let n_raw = quarter.reports.len();
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        assert!(result.quarter.reports.len() < n_raw);
        assert!(result
            .quarter
            .reports
            .iter()
            .all(|r| r.report_type == maras_faers::ReportType::Expedited));
    }

    #[test]
    fn counts_shrink_along_the_funnel() {
        let (result, _, _) = run_small();
        let c = result.counts;
        assert!(c.mcacs <= c.filtered_rules);
        assert!(c.filtered_rules <= c.total_rules);
        assert!(c.closed_itemsets <= c.frequent_itemsets);
    }

    #[test]
    fn rank_of_unknown_names_is_none() {
        let (result, dv, av) = run_small();
        assert_eq!(result.rank_of(&["NOT_A_DRUG"], &["Pain"], &dv, &av), None);
    }

    #[test]
    fn try_view_checks_bounds() {
        let (result, dv, av) = run_small();
        assert!(result.try_view(0, &dv, &av).is_some());
        assert!(result.try_view(result.ranked.len(), &dv, &av).is_none());
        assert!(result.try_view(usize::MAX, &dv, &av).is_none());
        assert_eq!(result.try_view(0, &dv, &av).unwrap(), result.view(0, &dv, &av));
    }

    #[test]
    fn closed_patterns_store_matches_counts() {
        let (result, _, _) = run_small();
        assert_eq!(result.closed_patterns.len() as u64, result.counts.closed_itemsets);
        // Store contract: strictly ascending item slices, positive support.
        for (items, support) in result.closed_patterns.iter() {
            assert!(items.windows(2).all(|w| w[0] < w[1]));
            assert!(support > 0);
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(5));
        let quarter = synth.generate_quarter(maras_faers::QuarterId::new(2015, 2));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let seq = Pipeline::new(PipelineConfig::default().with_n_threads(1)).run(
            quarter.clone(),
            &dv,
            &av,
        );
        let par = Pipeline::new(PipelineConfig::default().with_n_threads(4)).run(quarter, &dv, &av);
        assert_eq!(seq.counts, par.counts);
        assert!(seq.closed_patterns.iter().eq(par.closed_patterns.iter()));
        assert_eq!(seq.ranked.len(), par.ranked.len());
        for (a, b) in seq.ranked.iter().zip(&par.ranked) {
            assert_eq!(a.cluster.target, b.cluster.target);
            assert_eq!(a.score, b.score);
            // The whole score block must be bit-identical too.
            assert_eq!(a.scores, b.scores);
        }
    }

    #[test]
    fn rank_by_baseline_reorders_by_its_key() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(5));
        let quarter = synth.generate_quarter(maras_faers::QuarterId::new(2015, 2));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default().with_rank_by(crate::RankBy::Prr))
            .run(quarter, &dv, &av);
        assert!(!result.ranked.is_empty());
        for r in &result.ranked {
            assert_eq!(r.score, r.scores.prr.estimate);
        }
        assert!(result.ranked.windows(2).all(|w| w[0].score >= w[1].score));
        // Views expose the block.
        let v = result.view(0, &dv, &av);
        assert_eq!(v.scores, result.ranked[0].scores);
    }
}
