//! Domain-knowledge integration (thesis §1.3/§4.1): "integrating domain
//! knowledge into the system would be beneficial to highlight interactions
//! that are not unknown".
//!
//! A [`KnowledgeBase`] holds *already documented* drug-drug interactions
//! (what Drugs.com / DrugBank would supply). The interface uses it to let an
//! evaluator flip between "show me everything" and "show me only the
//! unknown interactions" — the thesis's definition of what a drug-safety
//! evaluator actually wants to triage.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One documented interaction: a drug set, optionally tied to specific ADRs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KnownInteraction {
    /// Canonical drug names, stored sorted.
    pub drugs: BTreeSet<String>,
    /// Literature source / note (e.g. "Drugs.com: therapeutic duplication").
    pub source: String,
}

/// A set of documented drug-drug interactions, plus per-drug *label*
/// knowledge (ADRs already documented for a single drug).
///
/// The two stores implement the thesis's two flavours of "already known"
/// (§1.3: "interestingness in unknown ADRs versus unknown drug-drug
/// interactions"): an interaction can be uninteresting because the drug
/// *combination* is documented, or because the reaction is already on some
/// constituent drug's label.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBase {
    entries: Vec<KnownInteraction>,
    /// drug (uppercase) → ADR terms documented on its label.
    labels: BTreeMap<String, BTreeSet<String>>,
}

impl KnowledgeBase {
    /// An empty knowledge base (everything counts as unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// The interactions the thesis validates against the literature (§5.4's
    /// three case studies plus the intro's Aspirin/Warfarin example).
    pub fn literature_validated() -> Self {
        let mut kb = KnowledgeBase::new();
        kb.add(&["IBUPROFEN", "METAMIZOLE"], "WHO Pharmaceuticals Newsletter 2014 / VigiBase");
        kb.add(&["METHOTREXATE", "PROGRAF"], "Drugs.com & DrugBank: additive nephrotoxicity");
        kb.add(&["PREVACID", "NEXIUM"], "Drugs.com: PPI therapeutic duplication");
        kb.add(&["ASPIRIN", "WARFARIN"], "Chan 1995: excessive bleeding");
        // Label knowledge the thesis cites: the FDA's PPI label revision
        // adding osteoporosis/fracture warnings (§5.4 Case III), plus
        // well-known single-drug reactions used by the examples.
        kb.add_label("PREVACID", "Osteoporosis");
        kb.add_label("NEXIUM", "Osteoporosis");
        kb.add_label("PRILOSEC", "Osteoporosis");
        kb.add_label("ZOMETA", "Osteonecrosis of jaw");
        kb.add_label("WARFARIN", "Haemorrhage");
        kb.add_label("IBUPROFEN", "Gastrointestinal haemorrhage");
        kb
    }

    /// Documents an ADR on a single drug's label.
    pub fn add_label(&mut self, drug: &str, adr: &str) {
        self.labels.entry(drug.to_ascii_uppercase()).or_default().insert(adr.to_string());
    }

    /// Whether the ADR is on the drug's label.
    pub fn is_labeled(&self, drug: &str, adr: &str) -> bool {
        self.labels.get(&drug.to_ascii_uppercase()).is_some_and(|adrs| adrs.contains(adr))
    }

    /// The labeled ADRs of a drug, if any are documented.
    pub fn labeled_adrs(&self, drug: &str) -> Option<&BTreeSet<String>> {
        self.labels.get(&drug.to_ascii_uppercase())
    }

    /// Whether an (drug set, ADR set) association carries at least one ADR
    /// that is *not* on any constituent drug's label — the "unknown ADR"
    /// interestingness preference.
    pub fn has_novel_adr(&self, drugs: &[&str], adrs: &[&str]) -> bool {
        adrs.iter().any(|adr| !drugs.iter().any(|drug| self.is_labeled(drug, adr)))
    }

    /// Adds an interaction over canonical drug names.
    pub fn add(&mut self, drugs: &[&str], source: &str) {
        assert!(drugs.len() >= 2, "an interaction involves at least two drugs");
        self.entries.push(KnownInteraction {
            drugs: drugs.iter().map(|d| d.to_ascii_uppercase()).collect(),
            source: source.to_string(),
        });
    }

    /// Number of documented interactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the base is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the exact drug combination is documented.
    pub fn is_known(&self, drugs: &[&str]) -> bool {
        self.lookup(drugs).is_some()
    }

    /// The documented entry for the exact drug combination, if any.
    pub fn lookup(&self, drugs: &[&str]) -> Option<&KnownInteraction> {
        let key: BTreeSet<String> = drugs.iter().map(|d| d.to_ascii_uppercase()).collect();
        self.entries.iter().find(|e| e.drugs == key)
    }

    /// Whether the drug combination *contains* a documented interaction
    /// (useful for flagging supersets: a known pair inside a triple).
    pub fn contains_known_subset(&self, drugs: &[&str]) -> bool {
        let key: BTreeSet<String> = drugs.iter().map(|d| d.to_ascii_uppercase()).collect();
        self.entries.iter().any(|e| e.drugs.is_subset(&key))
    }

    /// Iterates over the documented interactions.
    pub fn iter(&self) -> impl Iterator<Item = &KnownInteraction> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_is_order_and_case_insensitive() {
        let kb = KnowledgeBase::literature_validated();
        assert!(kb.is_known(&["METAMIZOLE", "IBUPROFEN"]));
        assert!(kb.is_known(&["ibuprofen", "metamizole"]));
        assert!(!kb.is_known(&["IBUPROFEN"]));
        assert!(!kb.is_known(&["IBUPROFEN", "ASPIRIN"]));
    }

    #[test]
    fn lookup_returns_source() {
        let kb = KnowledgeBase::literature_validated();
        let e = kb.lookup(&["PREVACID", "NEXIUM"]).unwrap();
        assert!(e.source.contains("Drugs.com"));
    }

    #[test]
    fn subset_matching_flags_supersets() {
        let kb = KnowledgeBase::literature_validated();
        assert!(kb.contains_known_subset(&["ASPIRIN", "WARFARIN", "NEXIUM"]));
        assert!(!kb.contains_known_subset(&["ASPIRIN", "NEXIUM"]));
        // Exact match must not fire for supersets.
        assert!(!kb.is_known(&["ASPIRIN", "WARFARIN", "NEXIUM"]));
    }

    #[test]
    fn custom_entries() {
        let mut kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        kb.add(&["DrugA", "DrugB", "DrugC"], "internal review");
        assert_eq!(kb.len(), 1);
        assert!(kb.is_known(&["DRUGC", "DRUGA", "DRUGB"]));
    }

    #[test]
    #[should_panic(expected = "at least two drugs")]
    fn single_drug_entry_rejected() {
        KnowledgeBase::new().add(&["ASPIRIN"], "nope");
    }

    #[test]
    fn label_knowledge_is_case_insensitive_on_drug() {
        let kb = KnowledgeBase::literature_validated();
        assert!(kb.is_labeled("prevacid", "Osteoporosis"));
        assert!(!kb.is_labeled("PREVACID", "Asthma"));
        assert!(kb.labeled_adrs("ZOMETA").unwrap().contains("Osteonecrosis of jaw"));
        assert!(kb.labeled_adrs("METAMIZOLE").is_none());
    }

    #[test]
    fn novel_adr_detection() {
        let kb = KnowledgeBase::literature_validated();
        // Osteoporosis is on both PPI labels: not novel for the pair.
        assert!(!kb.has_novel_adr(&["PREVACID", "NEXIUM"], &["Osteoporosis"]));
        // Acute renal failure is on neither label: novel.
        assert!(kb.has_novel_adr(&["IBUPROFEN", "METAMIZOLE"], &["Acute renal failure"]));
        // Mixed consequent: one novel ADR is enough.
        assert!(kb.has_novel_adr(&["PREVACID", "NEXIUM"], &["Osteoporosis", "Pain"]));
        // Empty consequent has no novel ADR.
        assert!(!kb.has_novel_adr(&["PREVACID"], &[]));
    }
}
