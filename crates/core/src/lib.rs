//! The end-to-end MARAS pipeline (thesis §1.4, §5.2) and the headless
//! counterpart of the §4.1 interactive interface.
//!
//! Stages, in the thesis's order:
//!
//! 1. **extract & clean** (`maras-faers`): abstract each case into its
//!    canonical (drug set, ADR set);
//! 2. **encode** ([`encode`]): map both vocabularies into one dense item
//!    space (drugs below, ADRs above the partition boundary) and build the
//!    transaction database;
//! 3. **mine** (`maras-mining` / `maras-rules`): closed drug→ADR
//!    associations;
//! 4. **cluster & rank** (`maras-mcac`): MCACs scored by exclusiveness;
//! 5. **explore** ([`query`], [`knowledge`], [`link`]): search by drug /
//!    ADR / severity, flag already-known interactions, and drill down from
//!    any rule to the raw FAERS reports supporting it.

#![warn(missing_docs)]

pub mod config;
pub mod encode;
pub mod ingest;
pub mod knowledge;
pub mod link;
pub mod pipeline;
pub mod query;
pub mod rollup;
pub mod similar;
pub mod stratify;
pub mod trend;

pub use config::{PipelineConfig, RankBy};
pub use encode::{encode_reports, Encoded};
pub use ingest::{run_quarter_dir, run_quarters_dir, MultiQuarterRun, QuarterOutcome, QuarterRun};
pub use knowledge::KnowledgeBase;
pub use link::{supporting_reports, supporting_tids};
pub use pipeline::{AnalysisResult, Pipeline, RuleView};
pub use query::{canonical_query_term, RuleQuery};
pub use rollup::{rollup_reports, RolledUp, Rollup};
pub use similar::{cluster_similarity, similar_clusters, SimilarityWeights};
pub use stratify::{stratified_tables, Stratifier};
pub use trend::{SignalTrend, TrendPoint, TrendTracker};
