//! Encoding cleaned reports into the mining item space.
//!
//! Drugs occupy item ids `0..n_drugs`, ADRs `n_drugs..n_drugs+n_adrs` —
//! the layout `maras_rules::ItemPartition` splits on. The encoder also keeps
//! the tid → source-report mapping the drill-down (§4.1 "Mapping the
//! drug-drug interactions to actual reports") depends on.

use maras_faers::{CleanedReport, Vocabulary};
use maras_mining::{Item, ItemSet, TransactionDb};
use maras_rules::ItemPartition;

/// A transaction database plus the metadata needed to decode items back to
/// names and tids back to raw reports.
#[derive(Debug)]
pub struct Encoded {
    /// One transaction per cleaned report: drug items ∪ ADR items.
    pub db: TransactionDb,
    /// The drug/ADR boundary.
    pub partition: ItemPartition,
    /// `case_ids[tid]` — FAERS case id of transaction `tid`.
    pub case_ids: Vec<u64>,
    /// `source_indices[tid]` — index into the raw quarter's report vector.
    pub source_indices: Vec<usize>,
}

/// Encodes cleaned reports against the vocabularies that produced them.
pub fn encode_reports(
    reports: &[CleanedReport],
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
) -> Encoded {
    let adr_start = drug_vocab.len() as u32;
    let partition = ItemPartition::new(adr_start);
    let mut transactions = Vec::with_capacity(reports.len());
    let mut case_ids = Vec::with_capacity(reports.len());
    let mut source_indices = Vec::with_capacity(reports.len());
    for r in reports {
        debug_assert!(r.drug_ids.iter().all(|&d| d < adr_start));
        debug_assert!(r.adr_ids.iter().all(|&a| (a as usize) < adr_vocab.len()));
        let items: Vec<Item> = r
            .drug_ids
            .iter()
            .map(|&d| Item(d))
            .chain(r.adr_ids.iter().map(|&a| Item(adr_start + a)))
            .collect();
        // Drug ids arrive sorted+deduped from cleaning, ADR ids likewise, and
        // the `adr_start` offset keeps the chained sequence strictly
        // ascending — no re-sort needed.
        transactions.push(ItemSet::from_sorted_unchecked(items));
        case_ids.push(r.case_id);
        source_indices.push(r.source_index);
    }
    Encoded { db: TransactionDb::from_itemsets(transactions), partition, case_ids, source_indices }
}

impl Encoded {
    /// Human-readable name of any item, via the vocabularies.
    pub fn item_name<'v>(
        &self,
        item: Item,
        drug_vocab: &'v Vocabulary,
        adr_vocab: &'v Vocabulary,
    ) -> &'v str {
        if self.partition.is_drug(item) {
            drug_vocab.term(item.0)
        } else {
            adr_vocab.term(self.partition.adr_index(item))
        }
    }

    /// Renders an itemset as a name list.
    pub fn names(
        &self,
        items: &ItemSet,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
    ) -> Vec<String> {
        items.iter().map(|i| self.item_name(i, drug_vocab, adr_vocab).to_string()).collect()
    }

    /// Item id of a canonical drug name, if present.
    pub fn drug_item(&self, name: &str, drug_vocab: &Vocabulary) -> Option<Item> {
        drug_vocab.id_of(name).map(Item)
    }

    /// Item id of a canonical ADR term, if present.
    pub fn adr_item(&self, term: &str, adr_vocab: &Vocabulary) -> Option<Item> {
        adr_vocab.id_of(term).map(|id| self.partition.adr_item(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_faers::model::Outcome;

    fn cleaned(case_id: u64, drugs: &[u32], adrs: &[u32], source: usize) -> CleanedReport {
        CleanedReport {
            case_id,
            drug_ids: drugs.to_vec(),
            adr_ids: adrs.to_vec(),
            serious: true,
            max_severity: Some(Outcome::Hospitalization),
            source_index: source,
        }
    }

    #[test]
    fn encoding_offsets_adrs() {
        let dv = Vocabulary::drugs(150);
        let av = Vocabulary::adrs(150);
        let reports = vec![cleaned(1, &[0, 5], &[0, 3], 0), cleaned(2, &[5], &[3], 1)];
        let e = encode_reports(&reports, &dv, &av);
        assert_eq!(e.db.len(), 2);
        assert_eq!(e.partition.adr_start, 150);
        let t0 = e.db.transaction(0);
        assert!(t0.contains(Item(0)));
        assert!(t0.contains(Item(5)));
        assert!(t0.contains(Item(150)));
        assert!(t0.contains(Item(153)));
        assert_eq!(e.case_ids, vec![1, 2]);
        assert_eq!(e.source_indices, vec![0, 1]);
    }

    #[test]
    fn item_names_decode() {
        let dv = Vocabulary::drugs(150);
        let av = Vocabulary::adrs(150);
        let e = encode_reports(&[cleaned(1, &[0], &[0], 0)], &dv, &av);
        assert_eq!(e.item_name(Item(0), &dv, &av), dv.term(0));
        assert_eq!(e.item_name(Item(150), &dv, &av), av.term(0));
        let names = e.names(&ItemSet::from_ids([0u32, 150]), &dv, &av);
        assert_eq!(names.len(), 2);
        assert_eq!(names[0], dv.term(0));
    }

    #[test]
    fn lookup_by_name() {
        let dv = Vocabulary::drugs(150);
        let av = Vocabulary::adrs(150);
        let e = encode_reports(&[], &dv, &av);
        let aspirin = e.drug_item("ASPIRIN", &dv).unwrap();
        assert!(e.partition.is_drug(aspirin));
        let osteo = e.adr_item("Osteoporosis", &av).unwrap();
        assert!(e.partition.is_adr(osteo));
        assert!(e.drug_item("NOTADRUG", &dv).is_none());
    }
}
