//! Rule → raw-report drill-down (thesis §4.1, "Mapping the drug-drug
//! interactions to actual reports").
//!
//! "It is essential to analyze the original data reports submitted by
//! patients that supports the corresponding drug-drug interactions" — the
//! evaluator needs age, history and co-medication context. The pipeline
//! keeps tid → source-report provenance, so any mined rule resolves to the
//! exact FAERS case reports in its cover.

use crate::pipeline::AnalysisResult;
use maras_faers::model::{CaseReport, Outcome};
use maras_rules::DrugAdrRule;

/// Transaction ids of a rule's cover (every transaction containing all of
/// the rule's drugs and ADRs), ascending. This is the canonical ordering
/// the evidence archive's postings intersection must reproduce exactly.
pub fn supporting_tids(result: &AnalysisResult, rule: &DrugAdrRule) -> Vec<u32> {
    result.encoded.db.cover_tids(&rule.complete_itemset())
}

/// The raw case reports supporting a rule, in tid order.
pub fn supporting_reports<'a>(
    result: &'a AnalysisResult,
    rule: &DrugAdrRule,
) -> Vec<&'a CaseReport> {
    supporting_tids(result, rule)
        .into_iter()
        .map(|tid| &result.quarter.reports[result.encoded.source_indices[tid as usize]])
        .collect()
}

/// FAERS case ids of the supporting reports.
pub fn supporting_case_ids(result: &AnalysisResult, rule: &DrugAdrRule) -> Vec<u64> {
    supporting_tids(result, rule)
        .into_iter()
        .map(|tid| result.encoded.case_ids[tid as usize])
        .collect()
}

/// The most severe outcome among a rule's supporting reports — the basis of
/// the interface's "interactions that may lead to particularly severe
/// adverse reactions" filter.
pub fn rule_max_severity(result: &AnalysisResult, rule: &DrugAdrRule) -> Option<Outcome> {
    supporting_reports(result, rule)
        .iter()
        .filter_map(|r| r.max_severity())
        .max_by_key(|o| o.severity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::pipeline::Pipeline;
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    #[test]
    fn supporting_reports_contain_the_rules_drugs() {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(5));
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        let Some(top) = result.ranked.first() else {
            panic!("expected at least one mined cluster");
        };
        let rule = &top.cluster.target;
        let reports = supporting_reports(&result, rule);
        assert_eq!(reports.len() as u64, rule.support());
        // Every supporting report, after normalization, mentions every drug
        // of the rule — check via the cleaned view keyed by case id.
        let ids = supporting_case_ids(&result, rule);
        assert_eq!(ids.len(), reports.len());
        for (report, case_id) in reports.iter().zip(&ids) {
            assert_eq!(report.case_id, *case_id);
            let cleaned = result
                .cleaned
                .iter()
                .find(|c| c.case_id == *case_id)
                .expect("cleaned entry exists");
            for drug_item in rule.drugs.iter() {
                assert!(cleaned.drug_ids.contains(&drug_item.0));
            }
        }
        // Severity: expedited reports are always serious, so a max exists.
        assert!(rule_max_severity(&result, rule).is_some());
    }
}
