//! Pipeline configuration.

use maras_faers::CleanConfig;
use maras_mcac::{DecayFn, ExclusivenessConfig, RankingMethod};
use maras_rules::Measure;
use serde::{Deserialize, Serialize};

/// Which score orders the ranked output — the CLI's `--rank-by` flag and
/// the server's `?sort_by=` parameter map onto this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RankBy {
    /// MARAS exclusiveness over MCACs (the paper's ranking; the default).
    #[default]
    Exclusiveness,
    /// Proportional reporting ratio point estimate.
    Prr,
    /// Reporting odds ratio point estimate.
    Ror,
    /// MGPS shrunken geometric mean (EBGM).
    Ebgm,
    /// Geometric mean of PRR, ROR and EBGM.
    Composite,
}

impl RankBy {
    /// Parses the CLI/query-string spelling; `None` for anything unknown.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "exclusiveness" => Some(RankBy::Exclusiveness),
            "prr" => Some(RankBy::Prr),
            "ror" => Some(RankBy::Ror),
            "ebgm" => Some(RankBy::Ebgm),
            "composite" => Some(RankBy::Composite),
            _ => None,
        }
    }
}

impl std::fmt::Display for RankBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            RankBy::Exclusiveness => "exclusiveness",
            RankBy::Prr => "prr",
            RankBy::Ror => "ror",
            RankBy::Ebgm => "ebgm",
            RankBy::Composite => "composite",
        };
        f.write_str(s)
    }
}

/// End-to-end configuration of one MARAS run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Keep only expedited reports (the thesis's §5.1 selection).
    pub expedited_only: bool,
    /// Cleaning-stage settings.
    pub clean: CleanConfig,
    /// Absolute minimum support for the closed-itemset miner. The thesis
    /// stresses a *low* threshold so rare combinations survive (§1.3).
    pub min_support: u64,
    /// Exclusiveness scoring settings (measure, θ, decay).
    pub exclusiveness: ExclusivenessConfig,
    /// Which score orders the ranked output. Every cluster carries the full
    /// disproportionality block either way; this picks the sort key.
    pub rank_by: RankBy,
    /// Mining worker threads; `0` means "use the machine's available
    /// parallelism". Safe at any value: the parallel miner's output is
    /// differential-tested byte-identical to the sequential miner's.
    pub n_threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            expedited_only: true,
            clean: CleanConfig::default(),
            min_support: 4,
            exclusiveness: ExclusivenessConfig::default(),
            rank_by: RankBy::default(),
            n_threads: 0,
        }
    }
}

impl PipelineConfig {
    /// Convenience: same pipeline but scoring with lift (Table 5.2's
    /// "Exclusiveness with Lift" column).
    pub fn with_lift(mut self) -> Self {
        self.exclusiveness.measure = Measure::Lift;
        self
    }

    /// Convenience: set the CV-penalty strength θ.
    pub fn with_theta(mut self, theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta), "theta must be in [0,1]");
        self.exclusiveness.theta = theta;
        self
    }

    /// Convenience: set the level-decay function.
    pub fn with_decay(mut self, decay: DecayFn) -> Self {
        self.exclusiveness.decay = decay;
        self
    }

    /// Convenience: set the minimum support.
    pub fn with_min_support(mut self, min_support: u64) -> Self {
        self.min_support = min_support;
        self
    }

    /// Convenience: set the mining thread count (`0` = auto-detect).
    pub fn with_n_threads(mut self, n_threads: usize) -> Self {
        self.n_threads = n_threads;
        self
    }

    /// Convenience: set the ranking key.
    pub fn with_rank_by(mut self, rank_by: RankBy) -> Self {
        self.rank_by = rank_by;
        self
    }

    /// The [`RankingMethod`] this configuration resolves to: exclusiveness
    /// carries the exclusiveness settings along; the disproportionality
    /// baselines map onto their dedicated variants.
    pub fn ranking_method(&self) -> RankingMethod {
        match self.rank_by {
            RankBy::Exclusiveness => RankingMethod::Exclusiveness(self.exclusiveness),
            RankBy::Prr => RankingMethod::Prr,
            RankBy::Ror => RankingMethod::Ror,
            RankBy::Ebgm => RankingMethod::Ebgm,
            RankBy::Composite => RankingMethod::Composite,
        }
    }

    /// Resolves [`Self::n_threads`] to a concrete worker count: `0` maps to
    /// the machine's available parallelism (falling back to 1 when that is
    /// unknowable), anything else is taken literally.
    pub fn effective_threads(&self) -> usize {
        if self.n_threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.n_threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_faithful() {
        let c = PipelineConfig::default();
        assert!(c.expedited_only);
        assert_eq!(c.exclusiveness.measure, Measure::Confidence);
        assert_eq!(c.exclusiveness.theta, 0.5);
    }

    #[test]
    fn builders_compose() {
        let c = PipelineConfig::default().with_lift().with_theta(0.8).with_min_support(10);
        assert_eq!(c.exclusiveness.measure, Measure::Lift);
        assert_eq!(c.exclusiveness.theta, 0.8);
        assert_eq!(c.min_support, 10);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn theta_out_of_range_panics() {
        PipelineConfig::default().with_theta(1.5);
    }

    #[test]
    fn rank_by_round_trips_and_resolves() {
        for (s, rank_by) in [
            ("exclusiveness", RankBy::Exclusiveness),
            ("prr", RankBy::Prr),
            ("ror", RankBy::Ror),
            ("ebgm", RankBy::Ebgm),
            ("composite", RankBy::Composite),
        ] {
            assert_eq!(RankBy::from_str_opt(s), Some(rank_by));
            assert_eq!(rank_by.to_string(), s);
        }
        assert_eq!(RankBy::from_str_opt("confidence"), None);
        // The default resolves to the paper's exclusiveness ranking with the
        // configured settings riding along.
        let c = PipelineConfig::default().with_theta(0.7);
        match c.ranking_method() {
            RankingMethod::Exclusiveness(cfg) => assert_eq!(cfg.theta, 0.7),
            other => panic!("default must rank by exclusiveness, got {other}"),
        }
        assert_eq!(
            PipelineConfig::default().with_rank_by(RankBy::Prr).ranking_method(),
            RankingMethod::Prr
        );
    }

    #[test]
    fn thread_count_resolution() {
        let auto = PipelineConfig::default();
        assert_eq!(auto.n_threads, 0);
        assert!(auto.effective_threads() >= 1);
        let fixed = PipelineConfig::default().with_n_threads(3);
        assert_eq!(fixed.effective_threads(), 3);
    }
}
