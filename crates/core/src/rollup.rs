//! Class-level rollups: re-encode cleaned reports with drugs collapsed to
//! ATC groups and/or ADRs collapsed to System Organ Classes.
//!
//! This is the Tatonetti-style view (thesis refs \[26–28\] "find
//! interactions among drug classes"): a PPI + PPI report becomes one
//! `Alimentary×2`… actually one `Alimentary` exposure, and a report listing
//! three renal PTs becomes one `Renal and urinary` event. Rolled-up
//! databases plug into every signal method in the workspace — closed-rule
//! mining, MCAC ranking, disproportionality — unchanged, because they are
//! ordinary [`TransactionDb`]s with an [`ItemPartition`].

use maras_faers::{AtcGroup, AtcIndex, CleanedReport, Soc, SocIndex};
use maras_mining::{Item, ItemSet, TransactionDb};
use maras_rules::ItemPartition;

/// What to collapse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rollup {
    /// Drugs → ATC groups; ADRs stay preferred terms.
    DrugClasses,
    /// ADRs → SOCs; drugs stay products.
    AdrSocs,
    /// Both sides collapsed: class × organ-class signals.
    Both,
}

/// A rolled-up transaction database with decode tables.
#[derive(Debug)]
pub struct RolledUp {
    /// The class-level transactions (tid-aligned with the input reports).
    pub db: TransactionDb,
    /// Drug/ADR boundary in the rolled-up item space.
    pub partition: ItemPartition,
    /// Which rollup was applied.
    pub rollup: Rollup,
    /// Number of distinct drug-side items (classes or products).
    pub n_drug_items: u32,
}

impl RolledUp {
    /// Human-readable name of a rolled-up item.
    pub fn item_name(
        &self,
        item: Item,
        drug_vocab: &maras_faers::Vocabulary,
        adr_vocab: &maras_faers::Vocabulary,
    ) -> String {
        if self.partition.is_drug(item) {
            match self.rollup {
                Rollup::DrugClasses | Rollup::Both => AtcGroup::ALL[item.0 as usize].to_string(),
                Rollup::AdrSocs => drug_vocab.term(item.0).to_string(),
            }
        } else {
            let idx = self.partition.adr_index(item);
            match self.rollup {
                Rollup::AdrSocs | Rollup::Both => Soc::ALL[idx as usize].name().to_string(),
                Rollup::DrugClasses => adr_vocab.term(idx).to_string(),
            }
        }
    }
}

/// Re-encodes cleaned reports at class level.
///
/// Item layout: drug-side items occupy `0..n_drug_items` (ATC group index
/// or original drug id), ADR-side items follow (SOC index or original ADR
/// id). Duplicate class items within a report collapse — a report with two
/// PPIs contributes *one* `Alimentary` item, so class-level support counts
/// reports, not products (the convention class-level disproportionality
/// uses).
pub fn rollup_reports(
    reports: &[CleanedReport],
    atc: &AtcIndex,
    soc: &SocIndex,
    drug_vocab_len: u32,
    adr_vocab_len: u32,
    rollup: Rollup,
) -> RolledUp {
    let n_drug_items: u32 = match rollup {
        Rollup::DrugClasses | Rollup::Both => AtcGroup::ALL.len() as u32,
        Rollup::AdrSocs => drug_vocab_len,
    };
    let _ = adr_vocab_len;
    let partition = ItemPartition::new(n_drug_items);
    let transactions: Vec<ItemSet> = reports
        .iter()
        .map(|r| {
            let drug_items = r.drug_ids.iter().map(|&d| match rollup {
                Rollup::DrugClasses | Rollup::Both => Item(atc.group(d).index()),
                Rollup::AdrSocs => Item(d),
            });
            let adr_items = r.adr_ids.iter().map(|&a| match rollup {
                Rollup::AdrSocs | Rollup::Both => Item(n_drug_items + soc_index_of(soc, a)),
                Rollup::DrugClasses => Item(n_drug_items + a),
            });
            ItemSet::from_items(drug_items.chain(adr_items).collect())
        })
        .collect();
    RolledUp { db: TransactionDb::from_itemsets(transactions), partition, rollup, n_drug_items }
}

fn soc_index_of(soc: &SocIndex, adr_id: u32) -> u32 {
    let s = soc.soc(adr_id);
    Soc::ALL.iter().position(|&x| x == s).expect("in ALL") as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_faers::model::Outcome;
    use maras_faers::Vocabulary;
    use maras_rules::multi_drug_rules;

    fn cleaned(case_id: u64, drugs: &[u32], adrs: &[u32]) -> CleanedReport {
        CleanedReport {
            case_id,
            drug_ids: drugs.to_vec(),
            adr_ids: adrs.to_vec(),
            serious: true,
            max_severity: Some(Outcome::Hospitalization),
            source_index: 0,
        }
    }

    fn setup() -> (Vocabulary, Vocabulary, AtcIndex, SocIndex) {
        let dv = Vocabulary::drugs(200);
        let av = Vocabulary::adrs(200);
        let atc = AtcIndex::build(&dv);
        let soc = SocIndex::build(&av);
        (dv, av, atc, soc)
    }

    #[test]
    fn drug_class_rollup_collapses_same_class_products() {
        let (dv, av, atc, soc) = setup();
        // Two PPIs (same Alimentary class) + one renal ADR.
        let prevacid = dv.id_of("PREVACID").unwrap();
        let nexium = dv.id_of("NEXIUM").unwrap();
        let arf = av.id_of("Acute renal failure").unwrap();
        let reports = vec![cleaned(1, &[prevacid, nexium], &[arf])];
        let rolled = rollup_reports(&reports, &atc, &soc, 200, 200, Rollup::DrugClasses);
        let t = rolled.db.transaction(0);
        // One class item + one (un-rolled) ADR item.
        assert_eq!(t.len(), 2);
        assert_eq!(rolled.partition.drug_count(t), 1);
        let class_item = t.items()[0];
        assert_eq!(AtcGroup::ALL[class_item.0 as usize], maras_faers::AtcGroup::Alimentary);
        // ADR id preserved, offset by the 14-class space.
        assert_eq!(t.items()[1].0, 14 + arf);
    }

    #[test]
    fn soc_rollup_collapses_same_organ_terms() {
        let (dv, av, atc, soc) = setup();
        let warfarin = dv.id_of("WARFARIN").unwrap();
        let h1 = av.id_of("Haemorrhage").unwrap();
        let h2 = av.id_of("Gastrointestinal haemorrhage").unwrap();
        let reports = vec![cleaned(1, &[warfarin], &[h1, h2])];
        let rolled = rollup_reports(&reports, &atc, &soc, 200, 200, Rollup::AdrSocs);
        let t = rolled.db.transaction(0);
        // Both haemorrhage PTs map to the Vascular SOC → one event item.
        assert_eq!(t.len(), 2);
        assert_eq!(rolled.partition.drug_count(t), 1);
        assert_eq!(t.items()[0].0, warfarin);
    }

    #[test]
    fn both_rollup_is_class_by_organ() {
        let (dv, av, atc, soc) = setup();
        let aspirin = dv.id_of("ASPIRIN").unwrap();
        let warfarin = dv.id_of("WARFARIN").unwrap();
        let h = av.id_of("Haemorrhage").unwrap();
        // Aspirin and warfarin are both Blood-class: one drug item.
        let reports = vec![cleaned(1, &[aspirin, warfarin], &[h])];
        let rolled = rollup_reports(&reports, &atc, &soc, 200, 200, Rollup::Both);
        let t = rolled.db.transaction(0);
        assert_eq!(t.len(), 2);
        let names: Vec<String> = t.iter().map(|i| rolled.item_name(i, &dv, &av)).collect();
        assert!(names[0].contains("Blood"), "{names:?}");
        assert!(names[1].contains("Vascular"), "{names:?}");
    }

    #[test]
    fn rolled_db_feeds_the_standard_miners() {
        let (dv, av, atc, soc) = setup();
        let ibu = dv.id_of("IBUPROFEN").unwrap(); // Musculoskeletal
        let prograf = dv.id_of("PROGRAF").unwrap(); // Antineoplastic
        let arf = av.id_of("Acute renal failure").unwrap();
        // Class pair co-occurs with renal failure in 3 reports.
        let reports: Vec<CleanedReport> =
            (0..3).map(|i| cleaned(i, &[ibu, prograf], &[arf])).collect();
        let rolled = rollup_reports(&reports, &atc, &soc, 200, 200, Rollup::Both);
        let rules = multi_drug_rules(&rolled.db, &rolled.partition, 2);
        assert_eq!(rules.len(), 1);
        let rule = &rules[0];
        assert_eq!(rule.n_drugs(), 2);
        let names: Vec<String> = rule
            .drugs
            .iter()
            .chain(rule.adrs.iter())
            .map(|i| rolled.item_name(i, &dv, &av))
            .collect();
        assert!(names.iter().any(|n| n.contains("Musculo")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("Antineoplastic")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("Renal")), "{names:?}");
    }

    #[test]
    fn tid_alignment_is_preserved() {
        let (dv, av, atc, soc) = setup();
        let _ = (&dv, &av);
        let reports = vec![
            cleaned(10, &[0, 1], &[0]),
            cleaned(11, &[2], &[1, 2]),
            cleaned(12, &[3, 4, 5], &[3]),
        ];
        for rollup in [Rollup::DrugClasses, Rollup::AdrSocs, Rollup::Both] {
            let rolled = rollup_reports(&reports, &atc, &soc, 200, 200, rollup);
            assert_eq!(rolled.db.len(), reports.len(), "{rollup:?}");
        }
    }
}
