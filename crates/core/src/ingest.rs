//! Fault-tolerant multi-quarter runs: graceful pipeline degradation.
//!
//! A production MARAS deployment analyzes whatever quarters the FDA has
//! published, and real extracts are dirty. This module threads the
//! `maras-faers` lenient-ingestion machinery ([`IngestOptions`],
//! [`IngestReport`]) through the pipeline so one bad quarter does not take
//! down a year-long run:
//!
//! * a quarter that ingests cleanly analyzes as [`QuarterOutcome::Ok`];
//! * a quarter with quarantined rows still analyzes — on the surviving
//!   reports — as [`QuarterOutcome::Degraded`], carrying the ingest report
//!   that says exactly what was skipped and why;
//! * a quarter whose ingest fails hard (I/O error, strict-mode offense, or
//!   a blown error budget) becomes [`QuarterOutcome::Failed`] and the run
//!   continues with the remaining quarters.
//!
//! Cross-quarter trend tracking stays aligned: failed quarters are fed to
//! [`TrendTracker::skip_quarter`], so every trajectory still spans every
//! requested quarter (with explicit absent points), and downstream
//! consumers — rollups, queries, reports — operate per-result exactly as
//! in an all-clean run.

use crate::pipeline::{AnalysisResult, Pipeline};
use crate::trend::TrendTracker;
use maras_faers::ascii::{
    read_quarter_dir_with, AsciiError, IngestMetrics, IngestOptions, IngestReport,
};
use maras_faers::{Cleaner, QuarterId, Vocabulary};
use std::path::Path;

/// What one quarter produced in a fault-tolerant run.
#[derive(Debug)]
pub enum QuarterOutcome {
    /// Clean ingest, full analysis.
    Ok {
        /// The quarter's analysis.
        result: AnalysisResult,
        /// The (clean) ingest accounting.
        report: IngestReport,
        /// Where the read spent its time.
        metrics: IngestMetrics,
    },
    /// Analysis completed on partial data: some rows were quarantined.
    Degraded {
        /// The analysis over the rows that survived ingestion.
        result: AnalysisResult,
        /// What was quarantined, and why.
        report: IngestReport,
        /// Where the read spent its time.
        metrics: IngestMetrics,
    },
    /// Ingest failed hard; the quarter contributed nothing.
    Failed {
        /// The terminal ingest error.
        error: AsciiError,
    },
}

/// One quarter's slot in a multi-quarter run.
#[derive(Debug)]
pub struct QuarterRun {
    /// Which quarter.
    pub id: QuarterId,
    /// What happened.
    pub outcome: QuarterOutcome,
}

impl QuarterRun {
    /// The analysis result, if the quarter was analyzed at all.
    pub fn result(&self) -> Option<&AnalysisResult> {
        match &self.outcome {
            QuarterOutcome::Ok { result, .. } | QuarterOutcome::Degraded { result, .. } => {
                Some(result)
            }
            QuarterOutcome::Failed { .. } => None,
        }
    }

    /// The ingest report, if ingestion got far enough to produce one.
    pub fn ingest_report(&self) -> Option<&IngestReport> {
        match &self.outcome {
            QuarterOutcome::Ok { report, .. } | QuarterOutcome::Degraded { report, .. } => {
                Some(report)
            }
            QuarterOutcome::Failed { .. } => None,
        }
    }

    /// The ingest wall-time/interner metrics, for analyzed quarters.
    pub fn ingest_metrics(&self) -> Option<&IngestMetrics> {
        match &self.outcome {
            QuarterOutcome::Ok { metrics, .. } | QuarterOutcome::Degraded { metrics, .. } => {
                Some(metrics)
            }
            QuarterOutcome::Failed { .. } => None,
        }
    }

    /// The terminal error, for failed quarters.
    pub fn error(&self) -> Option<&AsciiError> {
        match &self.outcome {
            QuarterOutcome::Failed { error } => Some(error),
            _ => None,
        }
    }

    /// Stable status label: `ok`, `degraded`, or `failed`.
    pub fn status(&self) -> &'static str {
        match &self.outcome {
            QuarterOutcome::Ok { .. } => "ok",
            QuarterOutcome::Degraded { .. } => "degraded",
            QuarterOutcome::Failed { .. } => "failed",
        }
    }
}

/// A fault-tolerant run over several quarters, with aligned trend
/// tracking.
#[derive(Debug)]
pub struct MultiQuarterRun {
    /// One entry per requested quarter, in request order.
    pub runs: Vec<QuarterRun>,
    /// Cross-quarter trajectories; failed quarters appear as explicit
    /// absent points.
    pub tracker: TrendTracker,
}

impl MultiQuarterRun {
    /// Quarters that ingested cleanly.
    pub fn ok_count(&self) -> usize {
        self.runs.iter().filter(|r| matches!(r.outcome, QuarterOutcome::Ok { .. })).count()
    }

    /// Quarters analyzed on partial data.
    pub fn degraded_count(&self) -> usize {
        self.runs.iter().filter(|r| matches!(r.outcome, QuarterOutcome::Degraded { .. })).count()
    }

    /// Quarters that contributed nothing.
    pub fn failed_count(&self) -> usize {
        self.runs.iter().filter(|r| matches!(r.outcome, QuarterOutcome::Failed { .. })).count()
    }

    /// The analyzed quarters (clean or degraded), in run order.
    pub fn analyzed(&self) -> impl Iterator<Item = (QuarterId, &AnalysisResult)> {
        self.runs.iter().filter_map(|r| r.result().map(|res| (r.id, res)))
    }
}

/// Ingests one quarter from `dir` under `opts` and, if anything was
/// parsed, analyzes it.
pub fn run_quarter_dir(
    pipeline: &Pipeline,
    dir: &Path,
    id: QuarterId,
    opts: &IngestOptions,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
) -> QuarterRun {
    let mut cleaner = Cleaner::new(drug_vocab, adr_vocab, pipeline.config().clean.clone());
    run_quarter_dir_with_cleaner(pipeline, dir, id, opts, &mut cleaner)
}

fn run_quarter_dir_with_cleaner(
    pipeline: &Pipeline,
    dir: &Path,
    id: QuarterId,
    opts: &IngestOptions,
    cleaner: &mut Cleaner<'_>,
) -> QuarterRun {
    let _span = maras_obs::span(&format!("quarter {id}"));
    let outcome = match read_quarter_dir_with(dir, id, opts) {
        Err(error) => QuarterOutcome::Failed { error },
        Ok(ingested) => {
            let clean = ingested.report.is_clean();
            let result = pipeline.run_with_cleaner(ingested.data, cleaner);
            if clean {
                QuarterOutcome::Ok { result, report: ingested.report, metrics: ingested.metrics }
            } else {
                QuarterOutcome::Degraded {
                    result,
                    report: ingested.report,
                    metrics: ingested.metrics,
                }
            }
        }
    };
    QuarterRun { id, outcome }
}

/// Runs the pipeline over every requested quarter in `dir`, degrading
/// gracefully: failed quarters are recorded (and skipped in the trend
/// tracker) instead of aborting the run.
pub fn run_quarters_dir(
    pipeline: &Pipeline,
    dir: &Path,
    ids: &[QuarterId],
    opts: &IngestOptions,
    drug_vocab: &Vocabulary,
    adr_vocab: &Vocabulary,
) -> MultiQuarterRun {
    let mut tracker = TrendTracker::new();
    let mut runs = Vec::with_capacity(ids.len());
    // One cleaner for the whole run: the canonicalization memos carry
    // across quarters, so each verbatim drug/ADR string pays the fuzzy
    // vocabulary search once per run instead of once per quarter.
    let mut cleaner = Cleaner::new(drug_vocab, adr_vocab, pipeline.config().clean.clone());
    for &id in ids {
        let run = run_quarter_dir_with_cleaner(pipeline, dir, id, opts, &mut cleaner);
        match run.result() {
            Some(result) => tracker.ingest(id, result),
            None => tracker.skip_quarter(id),
        }
        runs.push(run);
    }
    MultiQuarterRun { runs, tracker }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use maras_faers::ascii::{write_quarter_dir, ErrorBudget};
    use maras_faers::faults::{corrupt_quarter, FaultConfig};
    use maras_faers::{SynthConfig, Synthesizer};

    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn temp_dir(tag: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("maras_ingest_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    /// A year on disk: Q1/Q2/Q4 clean, Q3 corrupted at ~3%.
    fn year_on_disk(dir: &Path) -> (Synthesizer, Vec<QuarterId>) {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(31));
        let quarters = synth.generate_year(2014);
        let ids: Vec<QuarterId> = quarters.iter().map(|q| q.id).collect();
        for q in &quarters {
            if q.id.quarter == 3 {
                corrupt_quarter(q, &FaultConfig::new(5, 0.03)).write_dir(dir).unwrap();
            } else {
                write_quarter_dir(dir, q).unwrap();
            }
        }
        (synth, ids)
    }

    #[test]
    fn lenient_run_degrades_the_dirty_quarter_and_keeps_the_rest() {
        let tmp = temp_dir("lenient");
        let (synth, ids) = year_on_disk(&tmp.0);
        let run = run_quarters_dir(
            &Pipeline::new(PipelineConfig::default()),
            &tmp.0,
            &ids,
            &IngestOptions::lenient(),
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        assert_eq!(run.runs.len(), 4);
        assert_eq!(run.ok_count(), 3);
        assert_eq!(run.degraded_count(), 1);
        assert_eq!(run.failed_count(), 0);
        let q3 = &run.runs[2];
        assert_eq!(q3.status(), "degraded");
        let report = q3.ingest_report().unwrap();
        assert!(report.quarantined() > 0);
        assert!(!q3.result().unwrap().ranked.is_empty());
        // Trend trajectories span all four quarters.
        for t in run.tracker.trends() {
            assert_eq!(t.points.len(), 4);
        }
    }

    #[test]
    fn strict_run_fails_the_dirty_quarter_but_finishes() {
        let tmp = temp_dir("strict");
        let (synth, ids) = year_on_disk(&tmp.0);
        let run = run_quarters_dir(
            &Pipeline::new(PipelineConfig::default()),
            &tmp.0,
            &ids,
            &IngestOptions::strict(),
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        assert_eq!(run.ok_count(), 3);
        assert_eq!(run.failed_count(), 1);
        assert_eq!(run.runs[2].status(), "failed");
        assert!(run.runs[2].error().is_some());
        // Skipped quarters still occupy a trajectory slot.
        for t in run.tracker.trends() {
            assert_eq!(t.points.len(), 4);
            assert!(t.points[2].rank.is_none(), "failed quarter must be absent");
        }
        assert_eq!(run.analyzed().count(), 3);
    }

    #[test]
    fn tiny_budget_turns_degraded_into_failed() {
        let tmp = temp_dir("budget");
        let (synth, ids) = year_on_disk(&tmp.0);
        let opts = IngestOptions::lenient_with(ErrorBudget::max_frac(0.001));
        let run = run_quarters_dir(
            &Pipeline::new(PipelineConfig::default()),
            &tmp.0,
            &ids,
            &opts,
            synth.drug_vocab(),
            synth.adr_vocab(),
        );
        assert_eq!(run.failed_count(), 1);
        assert!(matches!(run.runs[2].error(), Some(AsciiError::BudgetExceeded { .. })));
    }
}
