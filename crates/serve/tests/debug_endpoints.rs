//! End-to-end flight-recorder correlation: boots the server on an
//! ephemeral port and proves that each notable outcome — a slow
//! request, an I/O-deadline timeout, a panicking route, and a shed —
//! produces (a) a structured `serve.request` event visible through
//! `GET /debug/logs` and (b) a `GET /debug/requests` entry, both
//! carrying the same request id the client saw echoed in the
//! `x-maras-request-id` response header. Also covers the
//! `ServeConfig::debug_endpoints` opt-out over a real socket.
//!
//! A process-wide mutex serializes the scenarios: the log ring is
//! process-global and the timeout scenario reasons about wall-clock
//! deadlines, so a loaded sibling test would skew both.

use maras_core::{Pipeline, PipelineConfig};
use maras_faers::{QuarterId, SynthConfig, Synthesizer};
use maras_serve::chaos;
use maras_serve::{serve_with, ServeConfig, ServeState, Snapshot, REQUEST_ID_HEADER};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn base_snapshot() -> &'static Snapshot {
    static SNAP: OnceLock<Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(23));
        let quarter = synth.generate_quarter(QuarterId::new(2017, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        Snapshot::build("2017 Q1", &result, &dv, &av, None)
    })
}

fn boot(config: ServeConfig) -> (Arc<ServeState>, maras_serve::ServerHandle, SocketAddr) {
    let s = base_snapshot();
    let snap = Snapshot::from_parts(
        s.quarter.clone(),
        s.n_reports,
        s.drug_vocab().clone(),
        s.adr_vocab().clone(),
        s.clusters.clone(),
    );
    let state = Arc::new(ServeState::new(snap, None, 64));
    let server = serve_with(Arc::clone(&state), "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    (state, server, addr)
}

fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// Fetches a `/debug/*` endpoint and parses its JSON body.
fn debug_json(addr: SocketAddr, target: &str) -> Value {
    let (status, _, body) = chaos::request_with_id(addr, "GET", target, Duration::from_secs(2));
    assert_eq!(status, Some(200), "{target} must serve, body: {body:?}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad JSON from {target}: {e:?}\n{body}"))
}

/// The `/debug/requests` entry for `id` — the correlation oracle.
fn flight_entry(addr: SocketAddr, id: &str) -> Value {
    let dump = debug_json(addr, "/debug/requests?limit=128");
    dump["requests"]
        .as_array()
        .expect("requests array")
        .iter()
        .find(|r| r.get("id").and_then(Value::as_str) == Some(id))
        .cloned()
        .unwrap_or_else(|| panic!("no /debug/requests entry for id {id}: {dump}"))
}

/// The `serve.request` log event for `id`, via `/debug/logs`.
fn log_event(addr: SocketAddr, id: &str) -> Value {
    let dump = debug_json(addr, "/debug/logs?limit=1000");
    dump["events"]
        .as_array()
        .expect("events array")
        .iter()
        .find(|e| {
            e.get("event").and_then(Value::as_str) == Some("serve.request")
                && e.get("request_id").and_then(Value::as_str) == Some(id)
        })
        .cloned()
        .unwrap_or_else(|| panic!("no serve.request log event for id {id}"))
}

#[test]
fn slow_request_is_correlated_end_to_end() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig::default());
    // Threshold zero: every request is "slow", so a plain healthz probe
    // becomes flight-recorder material.
    state.set_slow_threshold_us(0);

    let (status, id, _) = chaos::request_with_id(addr, "GET", "/healthz", Duration::from_secs(2));
    assert_eq!(status, Some(200));
    let id = id.expect("response must echo x-maras-request-id");
    state.set_slow_threshold_us(u64::MAX); // keep the debug fetches below out of the recorder

    let entry = flight_entry(addr, &id);
    assert_eq!(entry["outcome"].as_str(), Some("slow"));
    assert_eq!(entry["status"].as_u64(), Some(200));
    assert_eq!(entry["what"].as_str(), Some("GET /healthz"));

    let event = log_event(addr, &id);
    assert_eq!(event["level"].as_str(), Some("info"));
    assert_eq!(event["outcome"].as_str(), Some("slow"));
    assert_eq!(event["slow"].as_bool(), Some(true));
    assert!(event.get("total_us").and_then(Value::as_u64).is_some(), "{event}");

    server.shutdown();
}

#[test]
fn deadline_timeout_still_yields_an_attributable_record() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_state, server, addr) = boot(ServeConfig {
        io_timeout: Some(Duration::from_millis(300)),
        ..ServeConfig::default()
    });

    // A slowloris that sends part of a request line and stalls: the
    // deadline kills the read, but the captured prefix must still make
    // the timeout attributable.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"GET /half-sent-request HTT").expect("send partial line");
    stream.set_read_timeout(Some(Duration::from_secs(3))).expect("read timeout");
    let mut raw = Vec::new();
    let _ = stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    let head = text.split("\r\n\r\n").next().unwrap_or("").to_string();
    let status: Option<u16> =
        head.lines().next().and_then(|l| l.split_whitespace().nth(1)).and_then(|s| s.parse().ok());
    assert_eq!(status, Some(408), "deadline must answer 408 best-effort, got {head:?}");
    let id = chaos::parse_request_id(&head).expect("408 must echo x-maras-request-id");

    let entry = flight_entry(addr, &id);
    assert_eq!(entry["outcome"].as_str(), Some("timeout"));
    assert_eq!(entry["status"].as_u64(), Some(408));
    // Satellite: the request line was recorded *before* body read, so
    // the half-sent prefix survives the deadline kill.
    assert_eq!(entry["what"].as_str(), Some("GET /half-sent-request HTT"));

    let event = log_event(addr, &id);
    assert_eq!(event["level"].as_str(), Some("warn"));
    assert_eq!(event["what"].as_str(), Some("GET /half-sent-request HTT"));

    server.shutdown();
}

#[test]
fn panicking_route_is_correlated_end_to_end() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig::default());
    state.enable_panic_route();

    // Keep the injected unwind out of the test log; everything else
    // still reports through the previous hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<&str>().is_some_and(|m| m.contains("injected panic"));
        if !injected {
            prev(info);
        }
    }));
    let (status, id, _) = chaos::request_with_id(addr, "GET", "/__panic", Duration::from_secs(2));
    let _ = std::panic::take_hook();
    assert_eq!(status, Some(500));
    let id = id.expect("panic 500 must echo x-maras-request-id");

    let entry = flight_entry(addr, &id);
    assert_eq!(entry["outcome"].as_str(), Some("panic"));
    assert_eq!(entry["status"].as_u64(), Some(500));
    assert_eq!(entry["what"].as_str(), Some("GET /__panic"));

    let event = log_event(addr, &id);
    assert_eq!(event["level"].as_str(), Some("error"));
    assert_eq!(event["outcome"].as_str(), Some("panic"));

    server.shutdown();
}

#[test]
fn shed_connection_is_correlated_end_to_end() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 1,
        queue_depth: 1,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    // Pin the single worker, fill the one queue slot, then overflow:
    // the third connection is shed with 503 from the accept side.
    let c0 = chaos::open_stalled(addr).expect("stalled connection");
    wait_for("worker pinned", || state.metrics.in_flight() == 1);
    let mut c1 = chaos::open_request(addr, "/healthz").expect("queued request");
    wait_for("queue full", || state.metrics.queue_used() == 1);

    let (status, id, body) =
        chaos::request_with_id(addr, "GET", "/healthz", Duration::from_secs(2));
    assert_eq!(status, Some(503), "beyond-depth connection must be shed");
    assert!(body.contains("overloaded"), "{body}");
    let id = id.expect("shed 503 must echo x-maras-request-id");

    // Release the worker so the debug endpoints can answer.
    drop(c0);
    assert_eq!(chaos::read_response_status(&mut c1, Duration::from_secs(3)), Some(200));
    wait_for("queue drained", || state.metrics.queue_used() == 0 && state.metrics.in_flight() == 0);

    let entry = flight_entry(addr, &id);
    assert_eq!(entry["outcome"].as_str(), Some("shed"));
    assert_eq!(entry["status"].as_u64(), Some(503));
    assert_eq!(entry["what"].as_str(), Some("<shed: overloaded>"));

    let event = log_event(addr, &id);
    assert_eq!(event["level"].as_str(), Some("warn"));
    assert_eq!(event["reason"].as_str(), Some("overloaded"));

    server.shutdown();
}

#[test]
fn debug_opt_out_hides_the_suite_on_the_wire() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (_state, server, addr) =
        boot(ServeConfig { debug_endpoints: false, ..ServeConfig::default() });

    for target in ["/debug/logs", "/debug/requests", "/debug/runtime"] {
        let (status, id, body) =
            chaos::request_with_id(addr, "GET", target, Duration::from_secs(2));
        assert_eq!(status, Some(404), "{target} must 404 when the suite is disabled");
        assert!(body.contains("not_found"), "{body}");
        // Correlation stays on even where the suite is off: the 404
        // still echoes the request id.
        assert!(id.is_some(), "404 must still carry {REQUEST_ID_HEADER}");
    }
    // Known-but-disabled paths must not leak through the 405 arm either.
    let (status, _, _) =
        chaos::request_with_id(addr, "POST", "/debug/logs", Duration::from_secs(2));
    assert_eq!(status, Some(404), "wrong method on a hidden path is 404, not 405");

    server.shutdown();
}
