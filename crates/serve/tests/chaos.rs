//! Server chaos suite: seeded misbehaving clients against a live
//! server, asserting an **exact** ledger of shed / timeout / panic
//! counters per scenario and full recovery afterwards — the serving
//! analogue of the ingest layer's fault-injection harness.
//!
//! Every scenario ends with the same oracle: `GET /healthz` answers 200
//! within 2 s and every worker thread is still alive. Scenarios share
//! one mined snapshot (built once) but each boots its own server, so
//! ledgers start from zero. A process-wide mutex serializes the tests:
//! they reason about wall-clock deadlines, and a loaded sibling test
//! would skew them (`make chaos` additionally runs single-threaded
//! under a hard timeout).

use maras_core::{Pipeline, PipelineConfig};
use maras_faers::{QuarterId, SynthConfig, Synthesizer};
use maras_serve::chaos::{self, Injector};
use maras_serve::{respond, serve_with, ServeConfig, ServeState, Snapshot};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

static SERIAL: Mutex<()> = Mutex::new(());

fn base_snapshot() -> &'static Snapshot {
    static SNAP: OnceLock<Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(91));
        let quarter = synth.generate_quarter(QuarterId::new(2016, 2));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        Snapshot::build("2016 Q2", &result, &dv, &av, None)
    })
}

fn fresh_state() -> Arc<ServeState> {
    let s = base_snapshot();
    let snap = Snapshot::from_parts(
        s.quarter.clone(),
        s.n_reports,
        s.drug_vocab().clone(),
        s.adr_vocab().clone(),
        s.clusters.clone(),
    );
    Arc::new(ServeState::new(snap, None, 64))
}

fn boot(config: ServeConfig) -> (Arc<ServeState>, maras_serve::ServerHandle, SocketAddr) {
    let state = fresh_state();
    let server = serve_with(Arc::clone(&state), "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    (state, server, addr)
}

fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

/// The post-scenario oracle: healthy probe within 2 s, workers alive.
fn assert_recovered(addr: SocketAddr, state: &ServeState, workers: u64) {
    assert_eq!(
        chaos::probe_healthz(addr, Duration::from_secs(2)),
        Some(200),
        "server must answer a healthy probe within 2s after the scenario"
    );
    assert_eq!(state.metrics.workers_alive(), workers, "no worker may die to a scenario");
}

/// The exact counter ledger a scenario is expected to leave behind.
fn assert_ledger(state: &ServeState, shed: u64, timeouts: u64, panics: u64) {
    assert_eq!(state.metrics.sheds(), shed, "shed ledger");
    assert_eq!(state.metrics.timeouts(), timeouts, "timeout ledger");
    assert_eq!(state.metrics.worker_panics(), panics, "panic ledger");
}

#[test]
fn slowloris_is_cut_off_and_releases_the_worker() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let io_timeout = Duration::from_millis(400);
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 2,
        queue_depth: 8,
        io_timeout: Some(io_timeout),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    let started = Instant::now();
    let outcome = Injector::new(0x510c_1005).slowloris(
        addr,
        Duration::from_millis(25),
        Duration::from_secs(3),
    );
    assert!(outcome.server_closed, "server must cut off a byte-at-a-time client, got {outcome:?}");
    // The worker is released within the configured deadline (plus
    // generous scheduling slack), not held for the client's lifetime.
    assert!(
        started.elapsed() < io_timeout * 4,
        "slowloris held its worker for {:?}",
        started.elapsed()
    );
    wait_for("timeout counted", || state.metrics.timeouts() == 1);
    assert_ledger(&state, 0, 1, 0);
    assert_recovered(addr, &state, 2);
    server.shutdown();
}

#[test]
fn newline_free_header_flood_is_rejected_bounded() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 2,
        queue_depth: 8,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    // 64 KiB without a single newline: 4x the header cap. The bounded
    // reader must answer 413 after ~16 KiB instead of buffering it all.
    let outcome = Injector::new(7).header_flood(addr, 64 * 1024);
    assert!(
        outcome.status == Some(413) || outcome.server_closed,
        "flood must be rejected, got {outcome:?}"
    );
    wait_for("413 recorded", || state.metrics.total_requests() == 1);
    assert_ledger(&state, 0, 0, 0);
    assert_recovered(addr, &state, 2);
    server.shutdown();
}

#[test]
fn abort_mid_body_is_a_silent_dead_peer() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 2,
        queue_depth: 8,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    let outcome = Injector::new(13).abort_mid_body(addr);
    assert!(outcome.bytes_sent > 0, "client must have sent a partial request");
    // An aborted body is a dead peer, not an error to account: nothing
    // to respond to, nothing shed, no timeout, no panic. Probe first so
    // the ledger is read after the aborted connection was processed.
    assert_recovered(addr, &state, 2);
    wait_for("connection fully handled", || state.metrics.in_flight() == 0);
    assert_ledger(&state, 0, 0, 0);
    server.shutdown();
}

#[test]
fn connection_flood_beyond_queue_depth_sheds_exactly() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 1,
        queue_depth: 4,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    // Pin the single worker on a stalled connection...
    let c0 = chaos::open_stalled(addr).expect("stalled connection");
    wait_for("worker pinned", || state.metrics.in_flight() == 1);
    // ...park 4 well-formed requests to fill the admission queue...
    let fills: Vec<TcpStream> =
        (0..4).map(|_| chaos::open_request(addr, "/healthz").expect("fill connection")).collect();
    wait_for("queue full", || state.metrics.queue_used() == 4);

    // ...then flood past the depth: every extra connection must get an
    // immediate 503 `overloaded` from the accept side, never a wait.
    for i in 0..5 {
        let t = Instant::now();
        let (status, body) = chaos::request_raw(addr, "GET", "/healthz", Duration::from_secs(2));
        assert_eq!(status, Some(503), "flood connection {i} must be shed");
        assert!(body.contains("overloaded"), "shed body must say so, got {body:?}");
        assert!(t.elapsed() < Duration::from_secs(1), "shed must be immediate, not queued");
    }
    assert_eq!(state.metrics.sheds(), 5, "exactly the 5 beyond-depth connections shed");

    // The stalled connection times out, the worker drains the queue,
    // and every parked request is answered — flood over, nothing lost.
    wait_for("stalled connection timed out", || state.metrics.timeouts() == 1);
    for (i, mut stream) in fills.into_iter().enumerate() {
        let status = chaos::read_response_status(&mut stream, Duration::from_secs(3));
        assert_eq!(status, Some(200), "parked request {i} must still be served");
    }
    drop(c0);
    assert_ledger(&state, 5, 1, 0);
    assert_recovered(addr, &state, 1);

    // The ledger is visible on the wire, not just in-process.
    let (status, prom) = chaos::request_raw(addr, "GET", "/metrics", Duration::from_secs(2));
    assert_eq!(status, Some(200));
    assert!(prom.contains("maras_serve_shed_total 5"), "{prom}");
    assert!(prom.contains("maras_serve_timeouts_total 1"));
    server.shutdown();
}

#[test]
fn panicking_route_never_kills_a_worker() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 2,
        queue_depth: 8,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });
    state.enable_panic_route();

    // Keep the injected unwinds out of the test log; everything else
    // still reports through the previous hook.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected =
            info.payload().downcast_ref::<&str>().is_some_and(|m| m.contains("injected panic"));
        if !injected {
            prev(info);
        }
    }));
    for i in 0..3 {
        let (status, body) = chaos::request_raw(addr, "GET", "/__panic", Duration::from_secs(2));
        assert_eq!(status, Some(500), "panicking request {i} must answer 500");
        assert!(body.contains("internal_error"), "{body}");
    }
    let _ = std::panic::take_hook(); // restore the default hook

    assert_ledger(&state, 0, 0, 3);
    assert_recovered(addr, &state, 2);
    let (_, prom) = chaos::request_raw(addr, "GET", "/metrics", Duration::from_secs(2));
    assert!(prom.contains("maras_serve_worker_panics_total 3"), "{prom}");
    assert!(prom.contains("maras_serve_workers_alive 2"), "{prom}");
    server.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_and_queued_work() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 1,
        queue_depth: 4,
        io_timeout: Some(Duration::from_secs(2)),
        drain: Duration::from_secs(2),
        ..ServeConfig::default()
    });

    // c1: a request the worker is mid-read on when the drain starts.
    let mut c1 = chaos::open_stalled(addr).expect("connect");
    use std::io::Write;
    c1.write_all(b"GET /search?limit=1 HTTP/1.1\r\nhost: chaos\r\n").expect("partial request");
    wait_for("in-flight request", || state.metrics.in_flight() == 1);
    // c2: a well-formed request parked in the queue behind it.
    let mut c2 = chaos::open_request(addr, "/cluster/1").expect("queued request");
    wait_for("queued request", || state.metrics.queue_used() == 1);

    let shutdown = std::thread::spawn(move || server.shutdown());
    wait_for("drain begins", || state.is_draining());

    // /healthz flips to 503 {"status":"draining"} for LB deregistration.
    let req =
        maras_serve::http::Request { method: "GET".into(), path: "/healthz".into(), query: vec![] };
    let (_, status, body) = respond(&state, &req);
    assert_eq!(status, 503);
    assert!(body.contains("\"draining\""), "{body}");
    // New connections are shed at the accept side while draining.
    let (status, body) = chaos::request_raw(addr, "GET", "/healthz", Duration::from_secs(2));
    assert_eq!(status, Some(503));
    assert!(body.contains("draining"), "{body}");

    // The in-flight request completes its headers and is served...
    c1.write_all(b"\r\n").expect("finish request");
    assert_eq!(chaos::read_response_status(&mut c1, Duration::from_secs(3)), Some(200));
    // ...and so is the queued one — drain finishes admitted work.
    assert_eq!(chaos::read_response_status(&mut c2, Duration::from_secs(3)), Some(200));

    shutdown.join().expect("shutdown thread");
    // Post-drain: connections are refused outright or turned away.
    match chaos::get_status(addr, "/healthz", Duration::from_millis(500)) {
        None => {}
        Some(status) => assert_eq!(status, 503, "post-drain probe must not be served"),
    }
    assert_ledger(&state, 1, 0, 0);
    assert_eq!(state.metrics.workers_alive(), 0, "workers exit cleanly after the drain");
    assert_eq!(state.metrics.in_flight(), 0);
    assert_eq!(state.metrics.queue_used(), 0);
}

#[test]
fn drain_deadline_sheds_stragglers_with_503() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let (state, server, addr) = boot(ServeConfig {
        n_threads: 1,
        queue_depth: 4,
        io_timeout: Some(Duration::from_millis(800)),
        drain: Duration::from_millis(250),
        ..ServeConfig::default()
    });

    // A stalled in-flight connection that will never complete, and a
    // well-formed request queued behind it.
    let c1 = chaos::open_stalled(addr).expect("stalled connection");
    wait_for("worker pinned", || state.metrics.in_flight() == 1);
    let mut c2 = chaos::open_request(addr, "/healthz").expect("queued request");
    wait_for("queued request", || state.metrics.queue_used() == 1);

    // The drain window (250 ms) expires while the worker is still stuck
    // on the stalled peer (800 ms deadline): the queued request must be
    // shed with 503, not served and not leaked.
    let started = Instant::now();
    server.shutdown();
    assert!(started.elapsed() < Duration::from_secs(3), "drain must be bounded");
    assert_eq!(chaos::read_response_status(&mut c2, Duration::from_secs(1)), Some(503));
    drop(c1);

    assert_ledger(&state, 1, 1, 0); // c2 shed at the deadline, c1 timed out
    assert_eq!(state.metrics.workers_alive(), 0);
    assert_eq!(state.metrics.in_flight(), 0);
    assert_eq!(state.metrics.queue_used(), 0);
}

#[test]
fn concurrent_reloads_serialize_behind_the_try_lock() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let dir = std::env::temp_dir().join(format!("maras-chaos-reload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("chaos.snap");
    maras_serve::save(base_snapshot(), &path).expect("save snapshot");

    let snap = maras_serve::load(&path).expect("load snapshot");
    let state = Arc::new(ServeState::new(snap, Some(path), 64));
    let server = serve_with(
        Arc::clone(&state),
        "127.0.0.1:0",
        ServeConfig { n_threads: 4, ..ServeConfig::default() },
    )
    .expect("bind");
    let addr = server.addr();

    // A storm of concurrent reloads: every response is either the
    // winner's 200 or a clean 409 `reload_in_progress` — never a torn
    // swap, never a 500.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                chaos::request_raw(addr, "POST", "/reload", Duration::from_secs(5))
            })
        })
        .collect();
    let mut oks = 0;
    for (i, c) in clients.into_iter().enumerate() {
        let (status, body) = c.join().expect("reload client");
        match status {
            Some(200) => oks += 1,
            Some(409) => assert!(body.contains("reload_in_progress"), "client {i}: {body}"),
            other => panic!("client {i}: unexpected status {other:?} body {body}"),
        }
    }
    assert!(oks >= 1, "at least one reload must win the lock");
    assert_eq!(state.metrics.reloads(), oks, "completed reloads == 200 responses");
    assert_ledger(&state, 0, 0, 0);
    assert_recovered(addr, &state, 4);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
