//! The evidence drill-down over HTTP semantics (router-level, no socket):
//! `/cluster/N/reports` pages raw case reports out of the on-disk archive,
//! `/report/CASEID` serves point lookups, `/cluster/N` advertises both,
//! and hot reload swaps snapshot + archive together or not at all.

use maras_core::{Pipeline, PipelineConfig};
use maras_evidence::{build_archive, BuildConfig, EvidenceReader};
use maras_faers::{QuarterId, SynthConfig, Synthesizer};
use maras_serve::http::Request;
use maras_serve::{respond, save, Endpoint, ServeState, Snapshot};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_path(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("maras-evid-serve-{tag}-{}.{ext}", std::process::id()))
}

/// One analysis run turned into the snapshot + archive pair the server
/// loads, with both files left on disk for the reload tests.
fn fixture(tag: &str) -> (ServeState, PathBuf, PathBuf) {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(91));
    let quarter = synth.generate_quarter(QuarterId::new(2016, 2));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
    let snap = Snapshot::build("2016Q2", &result, &dv, &av, None);
    let snap_path = tmp_path(tag, "snap");
    save(&snap, &snap_path).unwrap();
    let evid_path = tmp_path(tag, "evid");
    build_archive(&result, &dv, &av, &evid_path, BuildConfig { block_size: 32 }).unwrap();
    let reader = Arc::new(EvidenceReader::open(&evid_path).unwrap());
    let state = ServeState::new(snap, Some(snap_path.clone()), 64)
        .with_evidence(reader, Some(evid_path.clone()));
    (state, snap_path, evid_path)
}

fn get(path: &str, query: &[(&str, &str)]) -> Request {
    Request {
        method: "GET".into(),
        path: path.into(),
        query: query.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
    }
}

fn cleanup(paths: &[&PathBuf]) {
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn cluster_detail_advertises_reports_and_pagination_walks_them() {
    let (st, snap_path, evid_path) = fixture("paginate");

    let (_, status, body) = respond(&st, &get("/cluster/1", &[]));
    assert_eq!(status, 200);
    let detail: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(detail["reports_url"], "/cluster/1/reports");
    let n_supporting = detail["n_supporting_reports"].as_u64().unwrap() as usize;
    let case_ids: Vec<u64> =
        detail["case_ids"].as_array().unwrap().iter().map(|v| v.as_u64().unwrap()).collect();
    assert_eq!(case_ids.len(), n_supporting);

    // Page through the advertised URL in chunks of 3; the concatenation
    // must reproduce the detail view's case ids exactly, in order.
    let mut walked: Vec<u64> = Vec::new();
    let mut offset = 0;
    loop {
        let off = offset.to_string();
        let (ep, status, body) =
            respond(&st, &get("/cluster/1/reports", &[("offset", &off), ("limit", "3")]));
        assert_eq!((ep, status), (Endpoint::Reports, 200));
        let page: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(page["total"].as_u64().unwrap() as usize, n_supporting);
        assert_eq!(page["offset"].as_u64().unwrap() as usize, offset);
        let reports = page["reports"].as_array().unwrap();
        if reports.is_empty() {
            break;
        }
        for r in reports {
            walked.push(r["case_id"].as_u64().unwrap());
            // Full raw-report shape, not just ids.
            assert!(r["drugs"].as_array().unwrap().len() >= 2, "rule needs >= 2 drugs");
            assert!(!r["reactions"].as_array().unwrap().is_empty());
            assert!(r.get("age").is_some() && r.get("sex").is_some());
        }
        offset += reports.len();
    }
    assert_eq!(walked, case_ids, "paged evidence must equal the in-snapshot provenance");

    // Point lookups resolve the same records by FAERS case id.
    let (ep, status, body) = respond(&st, &get(&format!("/report/{}", case_ids[0]), &[]));
    assert_eq!((ep, status), (Endpoint::Report, 200));
    let report: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(report["case_id"].as_u64().unwrap(), case_ids[0]);

    cleanup(&[&snap_path, &evid_path]);
}

#[test]
fn severity_filter_narrows_the_page() {
    let (st, snap_path, evid_path) = fixture("severity");
    let (_, status, body) =
        respond(&st, &get("/cluster/1/reports", &[("limit", "500"), ("min_severity", "6")]));
    assert_eq!(status, 200);
    let page: Value = serde_json::from_str(&body).unwrap();
    let all = respond(&st, &get("/cluster/1/reports", &[("limit", "500")]));
    let all: Value = serde_json::from_str(&all.2).unwrap();
    assert!(page["total"].as_u64().unwrap() <= all["total"].as_u64().unwrap());
    for r in page["reports"].as_array().unwrap() {
        assert_eq!(r["max_severity"].as_u64().unwrap(), 6, "death-only filter");
    }
    cleanup(&[&snap_path, &evid_path]);
}

#[test]
fn error_paths_are_typed_and_never_cached() {
    let (st, snap_path, evid_path) = fixture("errors");
    for (req, want_status, want_code) in [
        (get("/cluster/0/reports", &[]), 404, "not_found"),
        (get("/cluster/99999/reports", &[]), 404, "not_found"),
        (get("/cluster/xyz/reports", &[]), 400, "bad_request"),
        (get("/cluster/1/reports", &[("offset", "minus")]), 400, "bad_request"),
        (get("/cluster/1/reports", &[("limit", "-3")]), 400, "bad_request"),
        (get("/report/999999999", &[]), 404, "not_found"),
        (get("/report/not-a-number", &[]), 400, "bad_request"),
    ] {
        let (_, status, body) = respond(&st, &req);
        assert_eq!(status, want_status, "{req:?}");
        let json: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(json["error"]["code"], want_code, "{req:?}");
    }
    assert!(st.cache.is_empty(), "error responses must not enter the cache");

    // Wrong method on the evidence routes is 405, not 404.
    let req = Request { method: "POST".into(), path: "/report/1".into(), query: vec![] };
    let (_, status, _) = respond(&st, &req);
    assert_eq!(status, 405);
    cleanup(&[&snap_path, &evid_path]);
}

#[test]
fn without_an_archive_the_routes_404_but_detail_still_serves() {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(91));
    let quarter = synth.generate_quarter(QuarterId::new(2016, 2));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
    let st = ServeState::new(Snapshot::build("2016Q2", &result, &dv, &av, None), None, 64);

    let (_, status, body) = respond(&st, &get("/cluster/1/reports", &[]));
    assert_eq!(status, 404);
    let json: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(json["error"]["code"], "no_evidence");
    let (_, status, _) = respond(&st, &get("/report/1", &[]));
    assert_eq!(status, 404);
    // The snapshot-only detail view still works and still advertises the
    // (currently unserved) drill-down link.
    let (_, status, body) = respond(&st, &get("/cluster/1", &[]));
    assert_eq!(status, 200);
    let detail: Value = serde_json::from_str(&body).unwrap();
    assert!(detail["n_supporting_reports"].as_u64().unwrap() > 0);
}

#[test]
fn reload_swaps_archive_and_refuses_a_corrupt_one_atomically() {
    let (st, snap_path, evid_path) = fixture("reload");
    let reload = Request { method: "POST".into(), path: "/reload".into(), query: vec![] };

    // Healthy pair: reload succeeds and evidence keeps serving.
    let (_, status, _) = respond(&st, &reload);
    assert_eq!(status, 200);
    let (_, status, _) = respond(&st, &get("/cluster/1/reports", &[]));
    assert_eq!(status, 200);

    // Corrupt the archive on disk: reload must refuse it, keep the old
    // reader, and keep serving evidence from the pre-reload archive.
    let good = std::fs::read(&evid_path).unwrap();
    let mut bad = good.clone();
    bad[0] ^= 0xff;
    std::fs::write(&evid_path, &bad).unwrap();
    let (_, status, body) = respond(&st, &reload);
    assert_eq!(status, 500);
    let json: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(json["error"]["code"], "evidence_reload_failed");
    let (_, status, _) = respond(&st, &get("/cluster/1/reports", &[]));
    assert_eq!(status, 200, "old archive must keep serving after a failed reload");

    // Restore and reload again: back to healthy.
    std::fs::write(&evid_path, &good).unwrap();
    let (_, status, _) = respond(&st, &reload);
    assert_eq!(status, 200);
    cleanup(&[&snap_path, &evid_path]);
}
