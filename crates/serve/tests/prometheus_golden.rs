//! Golden-file test for the Prometheus text exposition: a fixed sequence
//! of recorded requests must render byte-identically to the checked-in
//! `tests/golden/metrics.prom`, plus structural checks (header-once
//! semantics, label escaping, bucket monotonicity) that hold for any
//! counter state.
//!
//! Regenerate the golden file after an intentional format change with
//! `UPDATE_GOLDEN=1 cargo test -p maras-serve --test prometheus_golden`.

use maras_serve::{Endpoint, Metrics};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.prom")
}

/// The fixed counter state every golden render uses.
fn fixed_metrics() -> Metrics {
    let m = Metrics::new();
    m.record(Endpoint::Healthz, 40, false);
    m.record(Endpoint::Search, 120, false);
    m.record(Endpoint::Search, 800, false);
    m.record(Endpoint::Search, 2_000_000, false);
    m.record(Endpoint::Cluster, 90, true);
    m.record(Endpoint::Other, 10, true);
    // Evidence drill-down endpoints: one cold page fetch, one point lookup.
    m.record(Endpoint::Reports, 350, false);
    m.record(Endpoint::Report, 60, false);
    // One flight-recorder introspection hit.
    m.record(Endpoint::Debug, 75, false);
    m.cache_hit();
    m.cache_miss();
    m.cache_miss();
    m.reload();
    m.slow_request();
    // Robustness ledger: shed twice, one I/O timeout, one recovered
    // panic, and a live pool of 3 workers with one queued + one
    // in-flight request at scrape time.
    m.shed();
    m.shed();
    m.timeout();
    m.worker_panic();
    for _ in 0..3 {
        m.worker_started();
    }
    m.enqueued();
    m.enqueued();
    m.dequeued();
    m.request_started();
    m
}

#[test]
fn exposition_matches_golden_file() {
    let rendered = fixed_metrics().to_prometheus(5);
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(rendered, golden, "exposition drifted from {path:?}");
}

#[test]
fn exposition_is_structurally_valid() {
    let text = fixed_metrics().to_prometheus(5);
    let mut seen_types = std::collections::HashSet::new();
    for line in text.lines() {
        assert!(!line.is_empty(), "no blank lines inside the exposition");
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(["counter", "gauge", "histogram"].contains(&kind), "{line}");
            assert!(seen_types.insert(name.to_string()), "duplicate # TYPE for {name}");
        } else if !line.starts_with('#') {
            // Every sample line is `name{labels} value` or `name value`.
            let (_, value) = line.rsplit_once(' ').expect("sample has a value");
            value.parse::<f64>().unwrap_or_else(|_| panic!("non-numeric value in {line}"));
        }
    }
    // Cumulative buckets never decrease within one series, and each
    // histogram's last bucket is le="+Inf" with count == _count.
    for endpoint in [
        "healthz",
        "metrics",
        "search",
        "autocomplete",
        "cluster",
        "reload",
        "other",
        "reports",
        "report",
        "debug",
    ] {
        let prefix = format!("maras_request_latency_us_bucket{{endpoint=\"{endpoint}\",le=");
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with(&prefix))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(!counts.is_empty(), "missing histogram for {endpoint}");
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{endpoint} buckets not monotone");
        let inf_line =
            format!("maras_request_latency_us_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}}");
        assert!(text.lines().any(|l| l.starts_with(&inf_line)), "missing +Inf bucket");
        let count_line = format!("maras_request_latency_us_count{{endpoint=\"{endpoint}\"}}");
        let total: u64 = text
            .lines()
            .find(|l| l.starts_with(&count_line))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .expect("histogram _count");
        assert_eq!(*counts.last().unwrap(), total, "{endpoint}: +Inf bucket != _count");
    }
}

fn evidence_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/evidence_metrics.prom")
}

/// The fixed evidence-reader counter state the evidence golden renders:
/// two cache hits, one miss (one disk read + decode), one resident block,
/// and one cover intersection.
fn fixed_evidence_registry() -> maras_obs::Registry {
    let reg = maras_obs::Registry::new();
    let m = maras_evidence::EvidenceMetrics::register(&reg);
    m.cache_hits.add(2);
    m.cache_misses.inc();
    m.cache_entries.set(1.0);
    m.block_read_us.observe(180.0);
    m.block_decode_us.observe(45.0);
    m.intersections.inc();
    reg
}

#[test]
fn evidence_series_match_golden_file() {
    let rendered = fixed_evidence_registry().render_prometheus();
    let path = evidence_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(rendered, golden, "evidence exposition drifted from {path:?}");
    // Every series carries the subsystem prefix; nothing anonymous leaks
    // into the shared registry from the evidence layer.
    for line in golden.lines().filter(|l| !l.starts_with('#')) {
        assert!(line.starts_with("maras_evidence_"), "unprefixed series: {line}");
    }
}

fn signals_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/signals_metrics.prom")
}

/// The fixed score-engine counter state the signals golden renders: two
/// batches (one 4-threaded, one single-threaded) totalling 150 rules.
fn fixed_signals_registry() -> maras_obs::Registry {
    let reg = maras_obs::Registry::new();
    let m = maras_signals::SignalsMetrics::register(&reg);
    m.rules_scored.add(120);
    m.batches.inc();
    m.batch_us.observe(1800.0);
    m.threads.set(4.0);
    m.rules_scored.add(30);
    m.batches.inc();
    m.batch_us.observe(700.0);
    m.threads.set(1.0);
    reg
}

#[test]
fn signals_series_match_golden_file() {
    let rendered = fixed_signals_registry().render_prometheus();
    let path = signals_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(rendered, golden, "signals exposition drifted from {path:?}");
    // Every series carries the subsystem prefix; the score engine adds to
    // the shared registry append-only.
    for line in golden.lines().filter(|l| !l.starts_with('#')) {
        assert!(line.starts_with("maras_signals_"), "unprefixed series: {line}");
    }
    for series in [
        "maras_signals_rules_scored_total",
        "maras_signals_batches_total",
        "maras_signals_batch_us",
        "maras_signals_threads",
    ] {
        assert!(golden.contains(series), "missing series {series}");
    }
}

fn tidset_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/tidset_metrics.prom")
}

/// The fixed set-algebra counter state the tidset golden renders: one
/// index build (3 array + 1 bitmap container, 9 KiB resident) followed by
/// a mixed kernel workload.
fn fixed_tidset_registry() -> maras_obs::Registry {
    let reg = maras_obs::Registry::new();
    let m = maras_tidset::TidsetMetrics::register(&reg);
    m.array_containers.add(3);
    m.bitmap_containers.inc();
    m.built_bytes.add(9216);
    m.intersect_calls.add(4);
    m.intersect_count_calls.add(12);
    m.union_calls.add(2);
    m.intersect_k_calls.add(5);
    reg
}

#[test]
fn tidset_series_match_golden_file() {
    let rendered = fixed_tidset_registry().render_prometheus();
    let path = tidset_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(rendered, golden, "tidset exposition drifted from {path:?}");
    // Every series carries the subsystem prefix; the kernels add to the
    // shared registry append-only.
    for line in golden.lines().filter(|l| !l.starts_with('#')) {
        assert!(line.starts_with("maras_tidset_"), "unprefixed series: {line}");
    }
    for series in [
        "maras_tidset_intersect_total",
        "maras_tidset_intersect_count_total",
        "maras_tidset_union_total",
        "maras_tidset_intersect_k_total",
        "maras_tidset_array_containers_total",
        "maras_tidset_bitmap_containers_total",
        "maras_tidset_built_bytes_total",
    ] {
        assert!(golden.contains(series), "missing series {series}");
    }
}

fn obs_dropped_golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/obs_dropped_metrics.prom")
}

/// The fixed flight-recorder drop ledger the obs golden renders: seven
/// log events evicted from the ring, two spans discarded at capacity.
/// Production increments the same series through the global registry;
/// a fresh one keeps the golden deterministic.
fn fixed_obs_dropped_registry() -> maras_obs::Registry {
    let reg = maras_obs::Registry::new();
    reg.counter_with(maras_obs::DROPPED_SERIES, maras_obs::DROPPED_HELP, &[("kind", "logs")])
        .add(7);
    reg.counter_with(maras_obs::DROPPED_SERIES, maras_obs::DROPPED_HELP, &[("kind", "spans")])
        .add(2);
    reg
}

#[test]
fn obs_dropped_series_match_golden_file() {
    let rendered = fixed_obs_dropped_registry().render_prometheus();
    let path = obs_dropped_golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {path:?} ({e}); run with UPDATE_GOLDEN=1"));
    assert_eq!(rendered, golden, "obs-dropped exposition drifted from {path:?}");
    // One # TYPE/# HELP block, both kinds present, subsystem prefix on
    // every sample: the drop ledger is append-only in the shared registry.
    for line in golden.lines().filter(|l| !l.starts_with('#')) {
        assert!(line.starts_with("maras_obs_dropped_total{"), "unprefixed series: {line}");
    }
    for kind in ["logs", "spans"] {
        assert!(
            golden.contains(&format!("maras_obs_dropped_total{{kind=\"{kind}\"}}")),
            "missing kind={kind}"
        );
    }
}

#[test]
fn label_values_are_escaped_in_registry_series() {
    // The global registry flows into the same exposition on /metrics;
    // escaping must survive the round trip for hostile label values.
    let reg = maras_obs::Registry::new();
    reg.counter_with("golden_escapes_total", "tricky \\ help\nline", &[("q", "a\"b\\c\nd")]).add(1);
    let text = reg.render_prometheus();
    assert!(text.contains("# HELP golden_escapes_total tricky \\\\ help\\nline\n"));
    assert!(text.contains("golden_escapes_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"));
}
