//! Exhaustive scan-vs-index parity: every combination of the query
//! filters must return identical rank lists from `RuleQuery::apply`
//! (the legacy full scan) and `Snapshot::query` (the inverted-index
//! path), with and without a knowledge base.

use maras_core::{KnowledgeBase, Pipeline, PipelineConfig, RuleQuery};
use maras_faers::{QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras_serve::Snapshot;

struct Fixture {
    result: maras_core::AnalysisResult,
    dv: Vocabulary,
    av: Vocabulary,
}

fn fixture(seed: u64) -> Fixture {
    let mut cfg = SynthConfig::test_scale(seed);
    cfg.n_reports = 1500;
    let mut synth = Synthesizer::new(cfg);
    let data = synth.generate_quarter(QuarterId::new(2014, 3));
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = Pipeline::new(PipelineConfig::default()).run(data, &dv, &av);
    Fixture { result, dv, av }
}

/// Builds the full combination grid:
/// severity × unknown_only × novel_adr_only × n_drugs × drug × adr.
fn query_grid(snap: &Snapshot) -> Vec<RuleQuery> {
    // Anchor drug/ADR choices in actual mined clusters so a meaningful
    // share of combinations is non-empty.
    let drugs: Vec<Option<String>> = {
        let mut d = vec![None];
        if let Some(c) = snap.clusters.first() {
            d.push(Some(c.drugs[0].clone()));
        }
        if let Some(c) = snap.clusters.last() {
            d.push(Some(c.drugs[c.drugs.len() - 1].clone()));
        }
        d.push(Some("NO-SUCH-DRUG-ANYWHERE".to_string()));
        d
    };
    let adrs: Vec<Option<String>> = {
        let mut a = vec![None];
        if let Some(c) = snap.clusters.first() {
            a.push(Some(c.adrs[0].clone()));
        }
        a
    };
    let mut grid = Vec::new();
    for min_severity in [None, Some(0), Some(3), Some(5)] {
        for unknown_only in [false, true] {
            for novel_adr_only in [false, true] {
                for n_drugs in [None, Some(2), Some(3)] {
                    for drug in &drugs {
                        for adr in &adrs {
                            let mut q = RuleQuery::new();
                            if let Some(s) = min_severity {
                                q = q.with_min_severity(s);
                            }
                            if unknown_only {
                                q = q.unknown_only();
                            }
                            if novel_adr_only {
                                q = q.novel_adr_only();
                            }
                            if let Some(n) = n_drugs {
                                q = q.with_n_drugs(n);
                            }
                            if let Some(d) = drug {
                                q = q.with_drug(d);
                            }
                            if let Some(a) = adr {
                                q = q.with_any_adr(a);
                            }
                            grid.push(q);
                        }
                    }
                }
            }
        }
    }
    grid
}

fn assert_parity(fx: &Fixture, snap: &Snapshot, kb: Option<&KnowledgeBase>, label: &str) {
    let grid = query_grid(snap);
    let mut non_empty = 0usize;
    for q in &grid {
        let scan = q.apply(&fx.result, &fx.dv, &fx.av, kb);
        let indexed = snap.query(q);
        assert_eq!(scan, indexed, "[{label}] query {q:?}");
        non_empty += usize::from(!scan.is_empty());
    }
    assert!(
        non_empty >= grid.len() / 10,
        "[{label}] grid too degenerate: only {non_empty}/{} non-empty",
        grid.len()
    );
}

#[test]
fn filter_grid_parity_with_knowledge_base() {
    let fx = fixture(7);
    let kb = KnowledgeBase::literature_validated();
    let snap = Snapshot::build("2014 Q3", &fx.result, &fx.dv, &fx.av, Some(&kb));
    assert_parity(&fx, &snap, Some(&kb), "kb");
}

#[test]
fn filter_grid_parity_without_knowledge_base() {
    let fx = fixture(8);
    let snap = Snapshot::build("2014 Q3", &fx.result, &fx.dv, &fx.av, None);
    assert_parity(&fx, &snap, None, "no-kb");
}

#[test]
fn parity_survives_store_roundtrip() {
    let fx = fixture(9);
    let kb = KnowledgeBase::literature_validated();
    let snap = Snapshot::build("2014 Q3", &fx.result, &fx.dv, &fx.av, Some(&kb));
    let dir = std::env::temp_dir().join(format!("maras-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("q.snap");
    maras_serve::save(&snap, &path).unwrap();
    let loaded = maras_serve::load(&path).unwrap();
    assert_parity(&fx, &loaded, Some(&kb), "roundtrip");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn min_score_thresholds_agree() {
    let fx = fixture(10);
    let snap = Snapshot::build("2014 Q3", &fx.result, &fx.dv, &fx.av, None);
    let scores: Vec<f64> = snap.clusters.iter().map(|c| c.score).collect();
    let mut thresholds = vec![f64::NEG_INFINITY, 0.0, f64::INFINITY];
    thresholds.extend(scores.iter().take(5).copied());
    for t in thresholds {
        let q = RuleQuery::new().with_min_score(t);
        assert_eq!(q.apply(&fx.result, &fx.dv, &fx.av, None), snap.query(&q), "min_score {t}");
    }
}
