//! End-to-end server test: boots the HTTP server on an ephemeral port,
//! exercises every endpoint over real sockets, performs a hot snapshot
//! swap mid-test, verifies a corrupted snapshot is refused while the old
//! one keeps serving, and pins indexed results byte-identical to the
//! legacy scan path.

use maras_core::{KnowledgeBase, Pipeline, PipelineConfig, RuleQuery};
use maras_faers::{QuarterId, SynthConfig, Synthesizer, Vocabulary};
use maras_serve::{serve, ServeState, Snapshot};
use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

struct Fixture {
    snapshot: Snapshot,
    result: maras_core::AnalysisResult,
    dv: Vocabulary,
    av: Vocabulary,
    kb: KnowledgeBase,
}

fn fixture(seed: u64, quarter: QuarterId, label: &str) -> Fixture {
    let mut synth = Synthesizer::new(SynthConfig::test_scale(seed));
    let data = synth.generate_quarter(quarter);
    let dv = synth.drug_vocab().clone();
    let av = synth.adr_vocab().clone();
    let result = Pipeline::new(PipelineConfig::default()).run(data, &dv, &av);
    let kb = KnowledgeBase::literature_validated();
    let snapshot = Snapshot::build(label, &result, &dv, &av, Some(&kb));
    Fixture { snapshot, result, dv, av, kb }
}

/// Minimal HTTP/1.1 client: one request, parse status + raw headers + body.
fn http_raw(addr: SocketAddr, method: &str, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let req = format!("{method} {target} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status: u16 = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, head.to_string(), body.to_string())
}

/// Minimal HTTP/1.1 client: one request, parse status + JSON body.
fn http(addr: SocketAddr, method: &str, target: &str) -> (u16, Value) {
    let (status, _, body) = http_raw(addr, method, target);
    let json = if body.is_empty() {
        Value::Null
    } else {
        serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e:?}"))
    };
    (status, json)
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("maras-serve-it-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn full_server_lifecycle() {
    let dir = temp_dir("lifecycle");
    let snap_path = dir.join("quarter.snap");

    let fx = fixture(41, QuarterId::new(2014, 1), "2014 Q1");
    maras_serve::save(&fx.snapshot, &snap_path).expect("save snapshot");
    let initial = maras_serve::load(&snap_path).expect("load snapshot");
    let n_clusters = initial.len();
    assert!(n_clusters > 0, "fixture must mine clusters");

    let state = Arc::new(ServeState::new(initial, Some(snap_path.clone()), 256));
    let server = serve(Arc::clone(&state), "127.0.0.1:0", 4).expect("bind ephemeral port");
    let addr = server.addr();

    // -- /healthz ---------------------------------------------------------
    let (status, health) = http(addr, "GET", "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health["status"], "ok");
    assert_eq!(health["quarter"], "2014 Q1");
    assert_eq!(health["clusters"], n_clusters);

    // -- /search: indexed results byte-identical to the legacy scan -------
    let top_drug = fx.snapshot.clusters[0].drugs[0].clone();
    let query = RuleQuery::new().with_drug(&top_drug).with_min_severity(3);
    let scan = query.apply(&fx.result, &fx.dv, &fx.av, Some(&fx.kb));
    let target = format!("/search?drug={}&min_severity=3&limit=1000", top_drug.replace(' ', "+"));
    let (status, found) = http(addr, "GET", &target);
    assert_eq!(status, 200);
    assert_eq!(found["total"], scan.len());
    let hits = found["hits"].as_array().expect("hits array");
    let api_ranks: Vec<usize> =
        hits.iter().map(|h| h["rank"].as_u64().unwrap() as usize - 1).collect();
    assert_eq!(api_ranks, scan, "indexed path must equal the scan path");
    for (hit, &rank) in hits.iter().zip(&scan) {
        let entry = &fx.snapshot.clusters[rank];
        assert_eq!(hit["score"].as_f64().unwrap(), entry.score);
        assert_eq!(hit["support"].as_u64().unwrap(), entry.support);
    }

    // Misspelled, lowercased drug goes through the same vocabulary
    // canonicalization as the scan path — parity must hold there too.
    let misspelled = format!("{}x", top_drug.to_ascii_lowercase());
    let scan_fuzzy =
        RuleQuery::new().with_drug(&misspelled).apply(&fx.result, &fx.dv, &fx.av, Some(&fx.kb));
    let (status, fuzzy) =
        http(addr, "GET", &format!("/search?drug={}&limit=1000", misspelled.replace(' ', "+")));
    assert_eq!(status, 200);
    assert_eq!(fuzzy["total"], scan_fuzzy.len(), "fuzzy spelling must canonicalize like the scan");
    assert!(!scan_fuzzy.is_empty(), "one-letter typo must still resolve to {top_drug}");

    // -- /autocomplete ----------------------------------------------------
    let prefix = &top_drug[..3.min(top_drug.len())];
    let (status, ac) = http(addr, "GET", &format!("/autocomplete?kind=drug&prefix={prefix}"));
    assert_eq!(status, 200);
    let terms: Vec<&str> =
        ac["completions"].as_array().unwrap().iter().map(|c| c["term"].as_str().unwrap()).collect();
    assert!(terms.contains(&top_drug.as_str()), "{terms:?} must contain {top_drug}");
    let (status, _) = http(addr, "GET", "/autocomplete?kind=adr&prefix=a");
    assert_eq!(status, 200);

    // -- /cluster/<rank> --------------------------------------------------
    let (status, detail) = http(addr, "GET", "/cluster/1");
    assert_eq!(status, 200);
    assert_eq!(detail["rank"], 1u64);
    assert!(detail["context"].as_array().is_some());
    assert_eq!(
        detail["case_ids"].as_array().unwrap().len() as u64,
        detail["support"].as_u64().unwrap()
    );
    let (status, _) = http(addr, "GET", &format!("/cluster/{}", n_clusters + 1));
    assert_eq!(status, 404);

    // -- score block + disproportionality filters and sorts ---------------
    let entry0 = &fx.snapshot.clusters[0];
    let scores = &detail["scores"];
    assert_eq!(scores["prr"]["estimate"].as_f64().unwrap(), entry0.scores.prr.estimate);
    assert_eq!(scores["ror"]["lower"].as_f64().unwrap(), entry0.scores.ror.lower);
    assert_eq!(scores["ebgm"]["ebgm"].as_f64().unwrap(), entry0.scores.ebgm.ebgm);
    assert_eq!(scores["table"]["a"].as_u64().unwrap(), entry0.scores.table.a);
    assert_eq!(scores["exclusiveness"].as_f64().unwrap(), entry0.score);

    // min_prr / min_ror answer identically to the legacy scan.
    let median_prr = fx.snapshot.clusters[n_clusters / 2].scores.prr.estimate;
    let filter_query = RuleQuery::new().with_min_prr(median_prr).with_min_ror(1.0);
    let scan_filtered = filter_query.apply(&fx.result, &fx.dv, &fx.av, Some(&fx.kb));
    let (status, filtered) =
        http(addr, "GET", &format!("/search?min_prr={median_prr}&min_ror=1&limit=1000"));
    assert_eq!(status, 200);
    let filtered_ranks: Vec<usize> = filtered["hits"]
        .as_array()
        .unwrap()
        .iter()
        .map(|h| h["rank"].as_u64().unwrap() as usize - 1)
        .collect();
    assert_eq!(filtered_ranks, scan_filtered, "min_prr/min_ror must equal the scan path");

    // ?sort_by=prr reorders hits by descending PRR estimate; every hit
    // carries the score block it was ordered by.
    let (status, by_prr) = http(addr, "GET", "/search?sort_by=prr&limit=1000");
    assert_eq!(status, 200);
    assert_eq!(by_prr["total"], n_clusters);
    let prrs: Vec<f64> = by_prr["hits"]
        .as_array()
        .unwrap()
        .iter()
        .map(|h| h["scores"]["prr"]["estimate"].as_f64().unwrap())
        .collect();
    assert_eq!(prrs.len(), n_clusters);
    for w in prrs.windows(2) {
        assert!(w[0] >= w[1], "sort_by=prr must be non-increasing: {} then {}", w[0], w[1]);
    }
    let (status, err) = http(addr, "GET", "/search?sort_by=alphabetical");
    assert_eq!(status, 400);
    assert_eq!(err["error"]["code"], "bad_request");

    // -- cache behaviour: repeat query hits the cache ---------------------
    let before = state.metrics.cache_hits();
    let (_, repeat) = http(addr, "GET", &target);
    assert_eq!(repeat, found, "cached response must be byte-identical");
    assert!(state.metrics.cache_hits() > before, "second identical query must hit the cache");

    // -- corrupted snapshot: reload refused, old snapshot keeps serving ---
    let good_bytes = std::fs::read(&snap_path).unwrap();
    let mut corrupt = good_bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    std::fs::write(&snap_path, &corrupt).unwrap();
    let (status, err) = http(addr, "POST", "/reload");
    assert_eq!(status, 500);
    assert_eq!(err["error"]["code"], "reload_failed");
    let (status, health) = http(addr, "GET", "/healthz");
    assert_eq!(status, 200);
    assert_eq!(health["quarter"], "2014 Q1", "old snapshot must keep serving");

    // -- hot swap: write a new quarter's snapshot and reload --------------
    let fx2 = fixture(42, QuarterId::new(2014, 2), "2014 Q2");
    maras_serve::save(&fx2.snapshot, &snap_path).expect("save second snapshot");
    let (status, reloaded) = http(addr, "POST", "/reload");
    assert_eq!(status, 200);
    assert_eq!(reloaded["status"], "reloaded");
    assert_eq!(reloaded["quarter"], "2014 Q2");
    let (_, health) = http(addr, "GET", "/healthz");
    assert_eq!(health["quarter"], "2014 Q2");
    assert_eq!(health["clusters"], fx2.snapshot.len());

    // Post-swap, the same search target is re-answered from the NEW data.
    let scan2 = query.apply(&fx2.result, &fx2.dv, &fx2.av, Some(&fx2.kb));
    let (_, found2) = http(addr, "GET", &target);
    assert_eq!(found2["total"], scan2.len(), "swap must invalidate cached answers");

    // -- /metrics.json: the legacy JSON counter schema --------------------
    let (status, metrics) = http(addr, "GET", "/metrics.json");
    assert_eq!(status, 200);
    assert!(metrics["requests"]["search"].as_u64().unwrap() >= 4);
    assert!(metrics["requests"]["healthz"].as_u64().unwrap() >= 3);
    assert_eq!(metrics["reloads"], 1u64);
    assert!(metrics["cache"]["hits"].as_u64().unwrap() >= 1);
    assert!(metrics["cache_entries"].as_u64().is_some());
    let buckets = metrics["latency_us"]["buckets"].as_array().unwrap();
    let total: u64 = buckets.iter().map(|b| b["count"].as_u64().unwrap()).sum();
    assert_eq!(
        total,
        metrics["requests"].as_object().unwrap().values().fold(0, |a, v| a + v.as_u64().unwrap())
    );

    // -- /metrics: Prometheus text exposition ------------------------------
    let (status, head, prom) = http_raw(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.to_ascii_lowercase().contains("content-type: text/plain; version=0.0.4"),
        "Prometheus content type, got headers: {head}"
    );
    assert!(prom.contains("# TYPE maras_requests_total counter"));
    assert!(prom.contains("# TYPE maras_request_latency_us histogram"));
    assert!(prom.contains("maras_requests_total{endpoint=\"search\"}"));
    assert!(prom.contains("maras_request_latency_us_bucket{endpoint=\"search\",le=\"+Inf\"}"));
    assert!(prom.contains("maras_snapshot_reloads_total 1"));
    // The fixtures ran the score engine in this process, so its series
    // must reach the scrape via the shared registry — while /metrics.json
    // above kept its frozen key set (no "signals" key).
    assert!(prom.contains("# TYPE maras_signals_rules_scored_total counter"));
    assert!(prom.contains("maras_signals_batches_total"));
    assert!(metrics.get("signals").is_none(), "signals series must stay Prometheus-only");
    // The scrape reflects the same counters as the JSON dump.
    let search_line = prom
        .lines()
        .find(|l| l.starts_with("maras_requests_total{endpoint=\"search\"}"))
        .expect("search series");
    let search_count: u64 = search_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(search_count, metrics["requests"]["search"].as_u64().unwrap());

    // -- malformed request handling ---------------------------------------
    let (status, err) = http(addr, "GET", "/search?min_severity=high");
    assert_eq!(status, 400);
    assert_eq!(err["error"]["code"], "bad_request");
    let (status, _) = http(addr, "GET", "/definitely/not/a/route");
    assert_eq!(status, 404);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_see_consistent_snapshots() {
    let fx = fixture(77, QuarterId::new(2015, 1), "2015 Q1");
    let state = Arc::new(ServeState::new(fx.snapshot, None, 128));
    let server = serve(Arc::clone(&state), "127.0.0.1:0", 4).expect("bind");
    let addr = server.addr();

    let (_, baseline) = http(addr, "GET", "/search?limit=5");
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let expected = baseline.clone();
            std::thread::spawn(move || {
                for _ in 0..10 {
                    let (status, body) = http(addr, "GET", "/search?limit=5");
                    assert_eq!(status, 200);
                    assert_eq!(body, expected);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    assert_eq!(state.metrics.total_requests() as usize, 8 * 10 + 1);
    server.shutdown();
}
