//! Request routing over a hot-swappable snapshot.
//!
//! [`ServeState`] owns everything a worker thread needs: the current
//! [`Snapshot`] behind `RwLock<Arc<..>>` (readers clone the `Arc` and
//! release the lock immediately, so a reload never blocks in-flight
//! queries), the response cache, and the metrics. [`respond`] is a pure
//! request → `(status, body)` function over that state, which is what
//! lets the bench harness and the integration tests drive the exact
//! production code path without a socket in the way.

use crate::cache::QueryCache;
use crate::debug::{self, FlightRecorder, DEFAULT_RECENT_REQUESTS};
use crate::http::Request;
use crate::metrics::{Endpoint, Metrics};
use crate::snapshot::{Snapshot, SortBy};
use crate::store::{self, StoreError};
use maras_core::RuleQuery;
use maras_evidence::{EvidenceError, EvidenceReader};
use maras_faers::CaseReport;
use maras_obs::{Event, Level};
use serde_json::Value;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, TryLockError};
use std::time::Instant;

/// Default slow-request threshold: 1 second.
pub const DEFAULT_SLOW_THRESHOLD_US: u64 = 1_000_000;

/// Why a `POST /reload` did not swap in a new snapshot.
#[derive(Debug)]
pub enum ReloadError {
    /// Another reload is already in flight; retry after it finishes.
    InProgress,
    /// The server was started without a snapshot file to re-read.
    NoPath,
    /// The file failed to load or verify; the old snapshot keeps serving.
    Store(StoreError),
    /// The evidence archive failed to reopen or verify; the old snapshot
    /// *and* the old archive keep serving.
    Evidence(EvidenceError),
}

/// Everything the server shares across worker threads.
pub struct ServeState {
    snapshot: RwLock<Arc<Snapshot>>,
    /// Where `POST /reload` re-reads the snapshot from; `None` for
    /// in-memory-only deployments (reload then returns 409).
    snapshot_path: Option<PathBuf>,
    /// Rendered-response cache, cleared on every successful swap.
    pub cache: QueryCache,
    /// Request/latency/cache counters.
    pub metrics: Metrics,
    /// Requests slower than this (µs) are logged to stderr and counted in
    /// `maras_slow_requests_total`.
    slow_threshold_us: AtomicU64,
    /// Flipped by [`ServeState::begin_drain`]: `/healthz` answers 503
    /// `{"status":"draining"}` so load balancers deregister the instance.
    draining: AtomicBool,
    /// Serializes `POST /reload`: the second concurrent reload gets 409
    /// instead of racing the snapshot swap.
    reload_lock: Mutex<()>,
    /// Enables the test-only `GET /__panic` route (chaos harness).
    panic_route: AtomicBool,
    /// The open evidence archive, if one was attached: raw case reports
    /// paged from disk for `/cluster/N/reports` and `/report/CASEID`.
    /// `None` keeps those routes on the 404 path.
    evidence: RwLock<Option<Arc<EvidenceReader>>>,
    /// Where `POST /reload` reopens the archive from, alongside the
    /// snapshot.
    evidence_path: Option<PathBuf>,
    /// The last-N notable requests (slow / shed / timed out / errored /
    /// panicked), served by `GET /debug/requests`.
    pub flight: FlightRecorder,
    /// Gates the whole `GET /debug/*` suite; disabled routes fall through
    /// to 404 as if they never existed.
    debug_endpoints: AtomicBool,
    /// When this state was built — `/debug/runtime`'s uptime origin.
    started: Instant,
}

impl ServeState {
    /// Wraps an initial snapshot; `snapshot_path` enables `POST /reload`.
    pub fn new(
        snapshot: Snapshot,
        snapshot_path: Option<PathBuf>,
        cache_capacity: usize,
    ) -> ServeState {
        ServeState {
            snapshot: RwLock::new(Arc::new(snapshot)),
            snapshot_path,
            cache: QueryCache::new(cache_capacity),
            metrics: Metrics::new(),
            slow_threshold_us: AtomicU64::new(DEFAULT_SLOW_THRESHOLD_US),
            draining: AtomicBool::new(false),
            reload_lock: Mutex::new(()),
            panic_route: AtomicBool::new(false),
            evidence: RwLock::new(None),
            evidence_path: None,
            flight: FlightRecorder::new(DEFAULT_RECENT_REQUESTS),
            debug_endpoints: AtomicBool::new(true),
            started: Instant::now(),
        }
    }

    /// Attaches an open evidence archive (builder-style, at startup);
    /// `evidence_path` lets `POST /reload` reopen it together with the
    /// snapshot.
    pub fn with_evidence(
        mut self,
        reader: Arc<EvidenceReader>,
        evidence_path: Option<PathBuf>,
    ) -> ServeState {
        self.evidence = RwLock::new(Some(reader));
        self.evidence_path = evidence_path;
        self
    }

    /// The current evidence reader, if one is attached; cheap (one `Arc`
    /// clone under a read lock).
    pub fn evidence(&self) -> Option<Arc<EvidenceReader>> {
        self.evidence.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Puts the state into drain mode: `/healthz` flips to 503
    /// `{"status":"draining"}` so a load balancer stops routing here.
    /// One-way — a draining server never goes back to accepting.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    /// Whether [`ServeState::begin_drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Enables the `GET /__panic` route, which panics inside the handler.
    /// Test-only: the chaos harness uses it to prove workers survive and
    /// count handler panics. Never enabled by the CLI.
    pub fn enable_panic_route(&self) {
        self.panic_route.store(true, Ordering::SeqCst);
    }

    fn panic_route_enabled(&self) -> bool {
        self.panic_route.load(Ordering::SeqCst)
    }

    /// Enables or disables the `GET /debug/*` introspection suite
    /// (enabled by default; `--no-debug` turns it off for deployments
    /// that must not expose internals on the serving port).
    pub fn set_debug_endpoints(&self, on: bool) {
        self.debug_endpoints.store(on, Ordering::SeqCst);
    }

    /// Whether the `/debug/*` suite is currently routable.
    pub fn debug_enabled(&self) -> bool {
        self.debug_endpoints.load(Ordering::SeqCst)
    }

    /// Holds the reload serialization lock, making every concurrent
    /// `POST /reload` answer 409 until the guard drops. Lets tests (and
    /// operators embedding the server) simulate a long in-flight reload.
    pub fn hold_reload_lock(&self) -> MutexGuard<'_, ()> {
        self.reload_lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Sets the slow-request threshold in microseconds.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.slow_threshold_us.store(us, Ordering::Relaxed);
    }

    /// The current slow-request threshold in microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// The current snapshot; cheap (one `Arc` clone under a read lock).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.snapshot.read().unwrap())
    }

    /// Atomically installs a new snapshot and invalidates the cache.
    pub fn swap(&self, next: Snapshot) {
        *self.snapshot.write().unwrap() = Arc::new(next);
        self.cache.clear();
        self.metrics.reload();
    }

    /// Re-reads the snapshot file and swaps it in. On any error the
    /// current snapshot keeps serving untouched. Reloads are serialized
    /// behind a try-lock: a second in-flight reload fails fast with
    /// [`ReloadError::InProgress`] instead of racing the swap.
    pub fn reload_from_disk(&self) -> Result<(), ReloadError> {
        let _guard = match self.reload_lock.try_lock() {
            Ok(g) => g,
            // A worker that panicked mid-reload must not wedge reloads
            // forever; the snapshot swap itself is atomic either way.
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return Err(ReloadError::InProgress),
        };
        let path = self.snapshot_path.as_ref().ok_or(ReloadError::NoPath)?;
        let next = store::load(path).map_err(ReloadError::Store)?;
        // Reopen the evidence archive *before* swapping anything: if it
        // fails to verify, the old snapshot/archive pair keeps serving
        // untouched.
        let next_evidence = match &self.evidence_path {
            Some(evidence_path) => {
                Some(Arc::new(EvidenceReader::open(evidence_path).map_err(ReloadError::Evidence)?))
            }
            None => None,
        };
        if let Some(reader) = next_evidence {
            *self.evidence.write().unwrap_or_else(|e| e.into_inner()) = Some(reader);
        }
        self.swap(next);
        Ok(())
    }
}

/// Routes one parsed request. Returns the endpoint (for metrics), the
/// HTTP status, and the JSON body. Every routed request also emits a
/// `Debug`-level `serve.route` event into the flight recorder's log
/// ring, carrying the correlation id when the server assigned one.
pub fn respond(state: &ServeState, req: &Request) -> (Endpoint, u16, String) {
    let (endpoint, status, body) = route(state, req);
    let mut event = Event::new(Level::Debug, "serve.route")
        .field("method", req.method.as_str())
        .field("path", req.path.as_str())
        .field("status", status);
    if let Some(id) = debug::current_request() {
        event = event.field("request_id", id.to_string());
    }
    event.emit();
    (endpoint, status, body)
}

fn route(state: &ServeState, req: &Request) -> (Endpoint, u16, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let (status, body) = healthz(state);
            (Endpoint::Healthz, status, body)
        }
        // Chaos-harness route: only reachable after enable_panic_route().
        // The worker pool must catch this unwind, stay alive, and count it.
        ("GET", "/__panic") if state.panic_route_enabled() => {
            panic!("injected panic: /__panic chaos route is enabled")
        }
        ("GET", "/metrics") => (Endpoint::Metrics, 200, metrics_prometheus(state)),
        ("GET", "/metrics.json") => (Endpoint::Metrics, 200, metrics_json(state)),
        ("GET", "/debug/logs") if state.debug_enabled() => {
            let (status, body) = debug_logs(req);
            (Endpoint::Debug, status, body)
        }
        ("GET", "/debug/requests") if state.debug_enabled() => {
            let (status, body) = debug_requests(state, req);
            (Endpoint::Debug, status, body)
        }
        ("GET", "/debug/runtime") if state.debug_enabled() => {
            (Endpoint::Debug, 200, debug_runtime(state))
        }
        ("GET", "/search") => cached(state, Endpoint::Search, req, search),
        ("GET", "/autocomplete") => cached(state, Endpoint::Autocomplete, req, autocomplete),
        ("GET", path) if path.starts_with("/cluster/") && path.ends_with("/reports") => {
            cached(state, Endpoint::Reports, req, cluster_reports)
        }
        ("GET", path) if path.starts_with("/cluster/") => {
            cached(state, Endpoint::Cluster, req, cluster)
        }
        ("GET", path) if path.starts_with("/report/") => {
            cached(state, Endpoint::Report, req, report)
        }
        ("POST", "/reload") => reload(state),
        (_, path) if known_path(path) || (state.debug_enabled() && known_debug_path(path)) => {
            (Endpoint::Other, 405, error_body("method_not_allowed", "wrong method for this path"))
        }
        _ => (Endpoint::Other, 404, error_body("not_found", "unknown path")),
    }
}

fn known_path(path: &str) -> bool {
    matches!(
        path,
        "/healthz" | "/metrics" | "/metrics.json" | "/search" | "/autocomplete" | "/reload"
    ) || path.starts_with("/cluster/")
        || path.starts_with("/report/")
}

/// Debug paths exist only while the suite is enabled: disabled, they are
/// 404s indistinguishable from never having shipped — not 405s that
/// advertise a hidden surface.
fn known_debug_path(path: &str) -> bool {
    matches!(path, "/debug/logs" | "/debug/requests" | "/debug/runtime")
}

/// Runs a GET handler through the response cache. Only 200 bodies are
/// cached; error responses are cheap to recompute and should not shadow
/// a later fix (e.g. a reload that adds the missing cluster).
fn cached(
    state: &ServeState,
    endpoint: Endpoint,
    req: &Request,
    handler: fn(&ServeState, &Request) -> (u16, String),
) -> (Endpoint, u16, String) {
    let key = req.cache_key();
    let cache_span = maras_obs::span("cache");
    let hit = state.cache.get(&key);
    drop(cache_span);
    if let Some(body) = hit {
        state.metrics.cache_hit();
        return (endpoint, 200, body);
    }
    state.metrics.cache_miss();
    let _render = maras_obs::span("render");
    let (status, body) = handler(state, req);
    if status == 200 {
        state.cache.put(key, body.clone());
    }
    (endpoint, status, body)
}

/// Health probe. While draining it answers 503 with
/// `{"status":"draining"}` — same shape, non-200 — which is what a load
/// balancer's health check needs to deregister the instance while
/// in-flight requests finish.
fn healthz(state: &ServeState) -> (u16, String) {
    let snap = state.snapshot();
    let draining = state.is_draining();
    let body = Value::obj([
        ("status", Value::from(if draining { "draining" } else { "ok" })),
        ("quarter", Value::from(snap.quarter.clone())),
        ("clusters", Value::from(snap.len())),
        ("reports", Value::from(snap.n_reports)),
    ])
    .to_string();
    (if draining { 503 } else { 200 }, body)
}

/// The legacy JSON counter dump, preserved verbatim on `/metrics.json`.
fn metrics_json(state: &ServeState) -> String {
    let mut m = match state.metrics.to_json() {
        Value::Object(m) => m,
        _ => unreachable!("metrics render as an object"),
    };
    m.insert("cache_entries".into(), Value::from(state.cache.len()));
    Value::Object(m).to_string()
}

/// Prometheus text exposition for `/metrics`: the server's own counters
/// followed by every series in the process-global registry (pipeline
/// counters, interner gauges, ... — whatever this process recorded).
fn metrics_prometheus(state: &ServeState) -> String {
    let mut text = state.metrics.to_prometheus(state.cache.len());
    text.push_str(&maras_obs::registry().render_prometheus());
    text
}

/// Hard ceiling on one `/debug/logs` page; the ring itself is bounded,
/// this just keeps a single response from serializing all of it.
const MAX_LOG_PAGE: usize = 1000;

/// `GET /debug/logs?level=&limit=` — the newest matching events from the
/// in-memory log ring, oldest first, straight from the flight recorder.
fn debug_logs(req: &Request) -> (u16, String) {
    let min_level = match req.param("level") {
        None => Level::Trace,
        Some(raw) => match Level::parse(raw) {
            Some(l) => l,
            None => {
                return (
                    400,
                    error_body(
                        "bad_request",
                        "'level' must be one of trace, debug, info, warn, error",
                    ),
                )
            }
        },
    };
    let limit = match parse_opt::<usize>(req, "limit") {
        Ok(v) => v.unwrap_or(100).min(MAX_LOG_PAGE),
        Err(e) => return (400, e),
    };
    let events = maras_obs::log_tail(limit, min_level);
    // Events already know their JSON-lines form; splice those objects
    // into the envelope instead of re-modeling every field type.
    let mut body = String::with_capacity(64 + events.len() * 96);
    body.push_str("{\"count\":");
    body.push_str(&events.len().to_string());
    body.push_str(",\"dropped\":");
    body.push_str(&maras_obs::logs_dropped().to_string());
    body.push_str(",\"events\":[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&event.json_line());
    }
    body.push_str("]}");
    (200, body)
}

/// `GET /debug/requests?limit=` — the flight recorder's notable requests
/// (slow / shed / timed out / errored / panicked), newest first, with
/// per-phase timings and the correlation id each response echoed.
fn debug_requests(state: &ServeState, req: &Request) -> (u16, String) {
    let limit = match parse_opt::<usize>(req, "limit") {
        Ok(v) => v.unwrap_or(50),
        Err(e) => return (400, e),
    };
    let records = state.flight.tail(limit);
    let body = Value::obj([
        ("count", Value::from(records.len())),
        ("recorded", Value::from(state.flight.recorded())),
        (
            "requests",
            Value::arr(records.iter().map(|r| {
                Value::obj([
                    ("id", Value::from(r.id.to_string())),
                    ("what", Value::from(r.what.clone())),
                    ("status", Value::from(u64::from(r.status))),
                    ("outcome", Value::from(r.outcome)),
                    ("ts_ms", Value::from(r.ts_ms)),
                    ("total_us", Value::from(r.total_us)),
                    ("parse_us", Value::from(r.parse_us)),
                    ("route_us", Value::from(r.route_us)),
                    ("write_us", Value::from(r.write_us)),
                ])
            })),
        ),
    ]);
    (200, body.to_string())
}

/// `GET /debug/runtime` — one self-describing health dump: uptime,
/// worker liveness, queue depth, robustness counters, cache stats, and
/// the observability substrate's own drop accounting.
fn debug_runtime(state: &ServeState) -> String {
    let m = &state.metrics;
    Value::obj([
        ("uptime_ms", Value::from(state.started.elapsed().as_millis() as u64)),
        ("draining", Value::from(state.is_draining())),
        ("workers_alive", Value::from(m.workers_alive())),
        ("queue_used", Value::from(m.queue_used())),
        ("in_flight", Value::from(m.in_flight())),
        ("requests", Value::from(m.total_requests())),
        ("shed", Value::from(m.sheds())),
        ("timeouts", Value::from(m.timeouts())),
        ("worker_panics", Value::from(m.worker_panics())),
        ("reloads", Value::from(m.reloads())),
        ("slow_requests", Value::from(m.slow_requests())),
        (
            "cache",
            Value::obj([
                ("entries", Value::from(state.cache.len())),
                ("hits", Value::from(m.cache_hits())),
                ("misses", Value::from(m.cache_misses())),
            ]),
        ),
        (
            "observability",
            Value::obj([
                ("spans_dropped", Value::from(maras_obs::spans_dropped())),
                ("logs_dropped", Value::from(maras_obs::logs_dropped())),
                ("log_events_seen", Value::from(maras_obs::log_events_seen())),
                ("log_recording", Value::from(maras_obs::recording_enabled())),
                ("requests_recorded", Value::from(state.flight.recorded())),
            ]),
        ),
    ])
    .to_string()
}

fn search(state: &ServeState, req: &Request) -> (u16, String) {
    let snap = state.snapshot();
    let mut query = RuleQuery::new();
    for drug in req.params("drug") {
        query = query.with_drug(drug);
    }
    for adr in req.params("adr") {
        query = query.with_any_adr(adr);
    }
    match parse_opt::<f64>(req, "min_score") {
        Ok(Some(v)) => query = query.with_min_score(v),
        Ok(None) => {}
        Err(e) => return (400, e),
    }
    match parse_opt::<u8>(req, "min_severity") {
        Ok(Some(v)) => query = query.with_min_severity(v),
        Ok(None) => {}
        Err(e) => return (400, e),
    }
    match parse_opt::<usize>(req, "n_drugs") {
        Ok(Some(v)) => query = query.with_n_drugs(v),
        Ok(None) => {}
        Err(e) => return (400, e),
    }
    match parse_opt::<f64>(req, "min_prr") {
        Ok(Some(v)) => query = query.with_min_prr(v),
        Ok(None) => {}
        Err(e) => return (400, e),
    }
    match parse_opt::<f64>(req, "min_ror") {
        Ok(Some(v)) => query = query.with_min_ror(v),
        Ok(None) => {}
        Err(e) => return (400, e),
    }
    match parse_flag(req, "unknown_only") {
        Ok(true) => query = query.unknown_only(),
        Ok(false) => {}
        Err(e) => return (400, e),
    }
    match parse_flag(req, "novel_adr_only") {
        Ok(true) => query = query.novel_adr_only(),
        Ok(false) => {}
        Err(e) => return (400, e),
    }
    let limit = match parse_opt::<usize>(req, "limit") {
        Ok(v) => v.unwrap_or(50),
        Err(e) => return (400, e),
    };
    let sort_by = match req.param("sort_by") {
        None => SortBy::Rank,
        Some(s) => match SortBy::from_str_opt(s) {
            Some(sb) => sb,
            None => {
                return (
                    400,
                    error_body(
                        "bad_request",
                        "'sort_by' must be one of rank, score, exclusiveness, prr, ror, ebgm",
                    ),
                )
            }
        },
    };
    let ranks = snap.sort_ranks(snap.query(&query), sort_by);
    let body = Value::obj([
        ("quarter", Value::from(snap.quarter.clone())),
        ("total", Value::from(ranks.len())),
        ("hits", Value::arr(ranks.iter().take(limit).map(|&r| snap.hit_json(r)))),
    ]);
    (200, body.to_string())
}

fn autocomplete(state: &ServeState, req: &Request) -> (u16, String) {
    let snap = state.snapshot();
    let prefix = match req.param("prefix") {
        Some(p) if !p.is_empty() => p,
        _ => return (400, error_body("bad_request", "missing or empty 'prefix' parameter")),
    };
    let limit = match parse_opt::<usize>(req, "limit") {
        Ok(v) => v.unwrap_or(10),
        Err(e) => return (400, e),
    };
    let completions = match req.param("kind") {
        Some("drug") | None => snap.complete_drug(prefix, limit),
        Some("adr") => snap.complete_adr(prefix, limit),
        Some(_) => return (400, error_body("bad_request", "'kind' must be 'drug' or 'adr'")),
    };
    let body = Value::obj([(
        "completions",
        Value::arr(completions.into_iter().map(|(term, n)| {
            Value::obj([("term", Value::from(term)), ("clusters", Value::from(n))])
        })),
    )]);
    (200, body.to_string())
}

fn cluster(state: &ServeState, req: &Request) -> (u16, String) {
    let snap = state.snapshot();
    let rank: usize = match req.path["/cluster/".len()..].parse() {
        Ok(r) => r,
        Err(_) => return (400, error_body("bad_request", "cluster rank must be an integer")),
    };
    // Ranks are 1-based in the API, matching every report the CLI emits.
    // `try_detail_json` keeps any out-of-range rank (including 0) on the 404
    // path instead of panicking the worker.
    match rank.checked_sub(1).and_then(|r| snap.try_detail_json(r)) {
        Some(detail) => (200, detail.to_string()),
        None => (404, error_body("not_found", "no cluster at that rank")),
    }
}

/// Renders one raw case report — the §4.1 evidence the reviewer drills
/// into: demographics, co-medication with suspect roles, reactions,
/// outcomes.
fn report_json(r: &CaseReport) -> Value {
    Value::obj([
        ("case_id", Value::from(r.case_id)),
        ("version", Value::from(u64::from(r.version))),
        ("report_type", Value::from(r.report_type.code())),
        ("age", r.age.map_or(Value::Null, |a| Value::from(f64::from(a)))),
        ("sex", Value::from(r.sex.code())),
        ("weight_kg", r.weight_kg.map_or(Value::Null, |w| Value::from(f64::from(w)))),
        ("country", Value::from(r.country.as_str())),
        ("event_date", r.event_date.map_or(Value::Null, |d| Value::from(u64::from(d)))),
        (
            "drugs",
            Value::arr(r.drugs.iter().map(|d| {
                Value::obj([
                    ("name", Value::from(d.name.as_str())),
                    ("role", Value::from(d.role.code())),
                ])
            })),
        ),
        ("reactions", Value::arr(r.reactions.iter().map(|t| Value::from(t.as_str())))),
        ("outcomes", Value::arr(r.outcomes.iter().map(|o| Value::from(o.code())))),
        ("max_severity", Value::from(r.max_severity().map_or(0, |o| o.severity()))),
        ("serious", Value::from(r.is_serious())),
    ])
}

/// Hard ceiling on one page of raw reports — keeps a single response (and
/// the cache entry it becomes) bounded no matter what `limit` says.
const MAX_REPORTS_PAGE: usize = 500;

/// `GET /cluster/<rank>/reports?offset=&limit=` — pages through the raw
/// case reports supporting a cluster, straight from the on-disk archive.
/// The cover is a postings intersection (no block is touched until the
/// requested page is materialized), so the server never holds the quarter
/// in memory.
fn cluster_reports(state: &ServeState, req: &Request) -> (u16, String) {
    let snap = state.snapshot();
    let inner = &req.path["/cluster/".len()..];
    let rank_str = inner.strip_suffix("/reports").unwrap_or(inner);
    let rank: usize = match rank_str.parse() {
        Ok(r) => r,
        Err(_) => return (400, error_body("bad_request", "cluster rank must be an integer")),
    };
    let offset = match parse_opt::<usize>(req, "offset") {
        Ok(v) => v.unwrap_or(0),
        Err(e) => return (400, e),
    };
    let limit = match parse_opt::<usize>(req, "limit") {
        Ok(v) => v.unwrap_or(20).min(MAX_REPORTS_PAGE),
        Err(e) => return (400, e),
    };
    let min_severity = match parse_opt::<u8>(req, "min_severity") {
        Ok(v) => v,
        Err(e) => return (400, e),
    };
    // 404 ordering matches `/cluster/<rank>`: an out-of-range rank is
    // "no cluster" regardless of whether evidence is attached.
    let Some(cluster) = rank.checked_sub(1).and_then(|r| snap.clusters.get(r)) else {
        return (404, error_body("not_found", "no cluster at that rank"));
    };
    let Some(evidence) = state.evidence() else {
        return (404, error_body("no_evidence", "server was started without an evidence archive"));
    };
    let mut cover = evidence.cover(&cluster.drugs, &cluster.adrs);
    if let Some(min) = min_severity.filter(|&m| m > 0) {
        let severe = evidence.severity_at_least(min);
        cover.retain(|t| severe.binary_search(t).is_ok());
    }
    let total = cover.len();
    let page: Vec<u32> = cover.into_iter().skip(offset).take(limit).collect();
    match evidence.reports_for(&page) {
        Ok(reports) => {
            let body = Value::obj([
                ("quarter", Value::from(evidence.quarter())),
                ("rank", Value::from(rank)),
                ("total", Value::from(total)),
                ("offset", Value::from(offset)),
                ("limit", Value::from(limit)),
                ("reports", Value::arr(reports.iter().map(report_json))),
            ]);
            (200, body.to_string())
        }
        Err(e) => (500, error_body("evidence_read_failed", &e.to_string())),
    }
}

/// `GET /report/<case_id>` — one raw case report by FAERS case id.
fn report(state: &ServeState, req: &Request) -> (u16, String) {
    let case_id: u64 = match req.path["/report/".len()..].parse() {
        Ok(id) => id,
        Err(_) => return (400, error_body("bad_request", "case id must be an integer")),
    };
    let Some(evidence) = state.evidence() else {
        return (404, error_body("no_evidence", "server was started without an evidence archive"));
    };
    match evidence.report_by_case_id(case_id) {
        Ok(Some(r)) => (200, report_json(&r).to_string()),
        Ok(None) => (404, error_body("not_found", "no report with that case id")),
        Err(e) => (500, error_body("evidence_read_failed", &e.to_string())),
    }
}

fn reload(state: &ServeState) -> (Endpoint, u16, String) {
    match state.reload_from_disk() {
        Ok(()) => {
            let snap = state.snapshot();
            let mut event = Event::new(Level::Info, "serve.reload")
                .field("quarter", snap.quarter.as_str())
                .field("clusters", snap.len());
            if let Some(id) = debug::current_request() {
                event = event.field("request_id", id.to_string());
            }
            event.emit();
            let body = Value::obj([
                ("status", Value::from("reloaded")),
                ("quarter", Value::from(snap.quarter.clone())),
                ("clusters", Value::from(snap.len())),
            ]);
            (Endpoint::Reload, 200, body.to_string())
        }
        Err(ReloadError::InProgress) => (
            Endpoint::Reload,
            409,
            error_body("reload_in_progress", "another reload is in flight; retry shortly"),
        ),
        Err(ReloadError::NoPath) => (
            Endpoint::Reload,
            409,
            error_body("no_snapshot_path", "server was started without a snapshot file"),
        ),
        Err(ReloadError::Store(e)) => {
            (Endpoint::Reload, 500, error_body("reload_failed", &e.to_string()))
        }
        Err(ReloadError::Evidence(e)) => {
            (Endpoint::Reload, 500, error_body("evidence_reload_failed", &e.to_string()))
        }
    }
}

fn parse_opt<T: std::str::FromStr>(req: &Request, name: &str) -> Result<Option<T>, String> {
    match req.param(name) {
        None => Ok(None),
        Some(raw) => raw
            .parse()
            .map(Some)
            .map_err(|_| error_body("bad_request", &format!("invalid '{name}' value: {raw:?}"))),
    }
}

fn parse_flag(req: &Request, name: &str) -> Result<bool, String> {
    match req.param(name) {
        None => Ok(false),
        Some("true") | Some("1") | Some("") => Ok(true),
        Some("false") | Some("0") => Ok(false),
        Some(raw) => {
            Err(error_body("bad_request", &format!("invalid '{name}' flag value: {raw:?}")))
        }
    }
}

/// Renders the uniform error envelope every non-200 response uses.
pub fn error_body(code: &str, message: &str) -> String {
    Value::obj([(
        "error",
        Value::obj([("code", Value::from(code)), ("message", Value::from(message))]),
    )])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_core::{Pipeline, PipelineConfig};
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn state() -> ServeState {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(91));
        let quarter = synth.generate_quarter(QuarterId::new(2016, 2));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        ServeState::new(Snapshot::build("2016 Q2", &result, &dv, &av, None), None, 64)
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query.iter().map(|&(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }

    #[test]
    fn search_serves_hits_and_caches_them() {
        let st = state();
        let req = get("/search", &[("min_severity", "3")]);
        let (ep, status, body) = respond(&st, &req);
        assert_eq!((ep, status), (Endpoint::Search, 200));
        let json = serde_json::from_str(&body).unwrap();
        assert_eq!(json["quarter"], "2016 Q2");
        assert!(json["total"].as_u64().unwrap() > 0);
        let (_, status2, body2) = respond(&st, &req);
        assert_eq!(status2, 200);
        assert_eq!(body2, body);
        assert_eq!(st.metrics.cache_hits(), 1);
    }

    #[test]
    fn bad_params_are_400_and_never_cached() {
        let st = state();
        for req in [
            get("/search", &[("min_severity", "high")]),
            get("/search", &[("unknown_only", "maybe")]),
            get("/autocomplete", &[]),
            get("/autocomplete", &[("prefix", "PR"), ("kind", "pet")]),
            get("/cluster/zero", &[]),
        ] {
            let (_, status, body) = respond(&st, &req);
            assert_eq!(status, 400, "{req:?}");
            let json = serde_json::from_str(&body).unwrap();
            assert!(!json["error"]["message"].as_str().unwrap().is_empty());
        }
        assert!(st.cache.is_empty());
    }

    #[test]
    fn cluster_rank_bounds() {
        let st = state();
        let n = st.snapshot().len();
        let (_, ok, body) = respond(&st, &get(&format!("/cluster/{n}"), &[]));
        assert_eq!(ok, 200);
        let json = serde_json::from_str(&body).unwrap();
        assert_eq!(json["rank"], n);
        let (_, missing, _) = respond(&st, &get(&format!("/cluster/{}", n + 1), &[]));
        assert_eq!(missing, 404);
        let (_, zero, _) = respond(&st, &get("/cluster/0", &[]));
        assert_eq!(zero, 404);
    }

    #[test]
    fn unknown_paths_and_methods() {
        let st = state();
        let (_, status, _) = respond(&st, &get("/nope", &[]));
        assert_eq!(status, 404);
        let req = Request { method: "POST".into(), path: "/search".into(), query: vec![] };
        let (_, status, _) = respond(&st, &req);
        assert_eq!(status, 405);
        let req = Request { method: "POST".into(), path: "/reload".into(), query: vec![] };
        let (_, status, _) = respond(&st, &req);
        assert_eq!(status, 409, "no snapshot path configured");
    }

    #[test]
    fn metrics_endpoints_serve_both_formats() {
        let st = state();
        respond(&st, &get("/search", &[]));
        // Request accounting lives in the connection handler, not respond().
        st.metrics.record(Endpoint::Search, 100, false);
        let (ep, status, prom) = respond(&st, &get("/metrics", &[]));
        assert_eq!((ep, status), (Endpoint::Metrics, 200));
        assert!(prom.contains("# TYPE maras_requests_total counter"), "{prom}");
        assert!(prom.contains("maras_requests_total{endpoint=\"search\"} 1"));
        let (ep, status, json) = respond(&st, &get("/metrics.json", &[]));
        assert_eq!((ep, status), (Endpoint::Metrics, 200));
        let json: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(json["requests"]["search"], 1u64);
        assert!(json["cache_entries"].as_u64().is_some());
        // Wrong method on the new path still routes to 405, not 404.
        let req = Request { method: "POST".into(), path: "/metrics.json".into(), query: vec![] };
        let (_, status, _) = respond(&st, &req);
        assert_eq!(status, 405);
    }

    #[test]
    fn healthz_flips_to_draining_503() {
        let st = state();
        let (_, status, body) = respond(&st, &get("/healthz", &[]));
        assert_eq!(status, 200);
        assert_eq!(serde_json::from_str(&body).unwrap()["status"], "ok");
        st.begin_drain();
        let (ep, status, body) = respond(&st, &get("/healthz", &[]));
        assert_eq!((ep, status), (Endpoint::Healthz, 503));
        let json = serde_json::from_str(&body).unwrap();
        assert_eq!(json["status"], "draining");
        // Identity fields survive the flip: deregistration, not amnesia.
        assert_eq!(json["quarter"], "2016 Q2");
    }

    #[test]
    fn concurrent_reload_is_409_until_lock_released() {
        let st = state();
        let req = Request { method: "POST".into(), path: "/reload".into(), query: vec![] };
        let guard = st.hold_reload_lock();
        let (_, status, body) = respond(&st, &req);
        assert_eq!(status, 409);
        assert_eq!(serde_json::from_str(&body).unwrap()["error"]["code"], "reload_in_progress");
        drop(guard);
        // Lock free again: this state has no snapshot path, so the reload
        // proceeds past serialization and fails on the *path* check.
        let (_, status, body) = respond(&st, &req);
        assert_eq!(status, 409);
        assert_eq!(serde_json::from_str(&body).unwrap()["error"]["code"], "no_snapshot_path");
    }

    #[test]
    fn panic_route_is_404_unless_enabled() {
        let st = state();
        let (_, status, _) = respond(&st, &get("/__panic", &[]));
        assert_eq!(status, 404, "chaos route must not exist by default");
        st.enable_panic_route();
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            respond(&st, &get("/__panic", &[]))
        }))
        .is_err();
        assert!(panicked, "enabled chaos route must panic inside the handler");
    }

    #[test]
    fn debug_endpoints_serve_logs_requests_and_runtime() {
        let st = state();
        // Runtime dump: self-describing JSON with the drop accounting.
        let (ep, status, body) = respond(&st, &get("/debug/runtime", &[]));
        assert_eq!((ep, status), (Endpoint::Debug, 200));
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(json["draining"], false);
        assert!(json["uptime_ms"].as_u64().is_some());
        assert!(json["observability"]["logs_dropped"].as_u64().is_some());
        assert!(json["observability"]["spans_dropped"].as_u64().is_some());
        assert!(json["cache"]["entries"].as_u64().is_some());

        // The flight recorder's records come back newest first.
        st.flight.record(crate::debug::RequestRecord {
            id: crate::debug::RequestId::next(),
            what: "GET /unit-test-record".into(),
            status: 200,
            outcome: "slow",
            total_us: 1_234,
            parse_us: 1,
            route_us: 2,
            write_us: 3,
            ts_ms: 0,
        });
        let (ep, status, body) = respond(&st, &get("/debug/requests", &[]));
        assert_eq!((ep, status), (Endpoint::Debug, 200));
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert!(json["recorded"].as_u64().unwrap() >= 1);
        let reqs = json["requests"].as_array().unwrap();
        let mine = reqs.iter().find(|r| r["what"] == "GET /unit-test-record").unwrap();
        assert_eq!(mine["outcome"], "slow");
        assert_eq!(mine["total_us"], 1_234u64);
        assert_eq!(mine["id"].as_str().unwrap().len(), 16);

        // Routing itself logged a Debug event that /debug/logs serves.
        // (The ring is process-global, so pick our event out by path.)
        respond(&st, &get("/search-debug-probe-path", &[]));
        let (_, status, body) = respond(&st, &get("/debug/logs", &[("limit", "1000")]));
        assert_eq!(status, 200);
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        let events = json["events"].as_array().unwrap();
        let probe = events
            .iter()
            .find(|e| e["path"] == "/search-debug-probe-path")
            .expect("serve.route event for the probe request");
        assert_eq!(probe["event"], "serve.route");
        assert_eq!(probe["level"], "debug");
        assert_eq!(probe["status"], 404u64);

        // Level filtering rejects junk, accepts real levels.
        let (_, status, _) = respond(&st, &get("/debug/logs", &[("level", "loud")]));
        assert_eq!(status, 400);
        let (_, status, body) = respond(&st, &get("/debug/logs", &[("level", "error")]));
        assert_eq!(status, 200);
        let json: serde_json::Value = serde_json::from_str(&body).unwrap();
        for e in json["events"].as_array().unwrap() {
            assert_eq!(e["level"], "error");
        }
    }

    #[test]
    fn debug_suite_is_405_on_wrong_method_and_404_when_disabled() {
        let st = state();
        for path in ["/debug/logs", "/debug/requests", "/debug/runtime"] {
            let req = Request { method: "POST".into(), path: path.into(), query: vec![] };
            let (_, status, _) = respond(&st, &req);
            assert_eq!(status, 405, "{path} enabled + wrong method");
        }
        st.set_debug_endpoints(false);
        assert!(!st.debug_enabled());
        for path in ["/debug/logs", "/debug/requests", "/debug/runtime"] {
            let (_, status, body) = respond(&st, &get(path, &[]));
            assert_eq!(status, 404, "{path} disabled must not exist");
            assert_eq!(serde_json::from_str(&body).unwrap()["error"]["code"], "not_found");
            // Disabled means *gone*, not method-gated: POST is 404 too.
            let req = Request { method: "POST".into(), path: path.into(), query: vec![] };
            let (_, status, _) = respond(&st, &req);
            assert_eq!(status, 404, "{path} disabled + wrong method");
        }
        st.set_debug_endpoints(true);
        let (_, status, _) = respond(&st, &get("/debug/runtime", &[]));
        assert_eq!(status, 200, "re-enable works");
    }

    #[test]
    fn swap_clears_cache_and_counts_reload() {
        let st = state();
        let req = get("/search", &[]);
        respond(&st, &req);
        assert!(!st.cache.is_empty());
        let snap = st.snapshot();
        st.swap(Snapshot::from_parts(
            "2017 Q1".into(),
            snap.n_reports,
            snap.drug_vocab().clone(),
            snap.adr_vocab().clone(),
            snap.clusters.clone(),
        ));
        assert!(st.cache.is_empty());
        let (_, _, body) = respond(&st, &get("/healthz", &[]));
        let json = serde_json::from_str(&body).unwrap();
        assert_eq!(json["quarter"], "2017 Q1");
    }
}
