//! Versioned binary snapshot persistence.
//!
//! Layout, all integers little-endian:
//!
//! ```text
//! magic    8 bytes  b"MARASNAP"
//! version  u32      FORMAT_VERSION — refuse anything else
//! length   u64      payload byte count
//! checksum u64      FNV-1a 64 over the payload
//! payload  ...      length-prefixed fields (see encode_snapshot)
//! ```
//!
//! Loading verifies magic, version, length, and checksum before touching
//! the payload, so a truncated or bit-flipped file is rejected with a
//! structured [`StoreError`] instead of yielding a half-parsed snapshot.
//! Saving goes through a temp file + rename, so a crash mid-write never
//! clobbers the previous good snapshot, and a reload that races a save
//! sees either the old file or the new one, never a torn mix.

use crate::snapshot::{ClusterEntry, ContextEntry, Snapshot};
use maras_faers::Vocabulary;
use maras_signals::{
    ConfidenceInterval, ContingencyTable, EbgmScores, InformationComponent, SignalScores,
};
use maras_tidset::TidSet;
use rustc_hash::FxHashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// File magic: identifies a MARAS snapshot regardless of extension.
pub const MAGIC: &[u8; 8] = b"MARASNAP";
/// Current on-disk format version. Version 3 serializes the filter-grid
/// posting indexes (drug, ADR, severity, antecedent-cardinality) as
/// hybrid array/bitmap containers, so loading maps postings straight into
/// the compressed sets the query path intersects instead of rebuilding
/// them from the clusters. Version 2 appended the per-cluster
/// disproportionality score block. Older versions are refused with
/// [`StoreError::BadVersion`] (the snapshot is cheap to rebuild from the
/// quarter, and guessing at missing sections would corrupt query
/// results silently).
pub const FORMAT_VERSION: u32 = 3;

/// Why a snapshot file was refused.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// Payload shorter/longer than the header promised.
    Truncated,
    /// FNV-1a checksum mismatch (stored vs recomputed).
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the payload as read.
        actual: u64,
    },
    /// Structurally invalid payload (bad length prefix, non-UTF-8 text).
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a MARAS snapshot (bad magic)"),
            StoreError::BadVersion(v) => {
                write!(f, "unsupported snapshot format version {v} (expected {FORMAT_VERSION})")
            }
            StoreError::Truncated => write!(f, "snapshot file truncated"),
            StoreError::ChecksumMismatch { stored, actual } => write!(
                f,
                "snapshot checksum mismatch (header {stored:#018x}, payload {actual:#018x})"
            ),
            StoreError::Corrupt(what) => write!(f, "snapshot payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// FNV-1a 64-bit — tiny, dependency-free, and plenty for integrity
/// (corruption detection, not adversarial tamper-proofing).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serializes a snapshot and writes it atomically (temp file + rename).
pub fn save(snapshot: &Snapshot, path: &Path) -> Result<(), StoreError> {
    let _span = maras_obs::span("snapshot_save");
    let payload = encode_snapshot(snapshot);
    let mut file = Vec::with_capacity(payload.len() + 28);
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    file.extend_from_slice(&payload);
    let tmp = path.with_extension("tmp");
    {
        let mut out = fs::File::create(&tmp)?;
        out.write_all(&file)?;
        out.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Loads and fully validates a snapshot file, rebuilding every index.
pub fn load(path: &Path) -> Result<Snapshot, StoreError> {
    let _span = maras_obs::span("snapshot_load");
    let bytes = fs::read(path)?;
    if bytes.len() < 28 || &bytes[..8] != MAGIC {
        return Err(if bytes.len() >= 8 { StoreError::BadMagic } else { StoreError::Truncated });
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let length = u64::from_le_bytes(bytes[12..20].try_into().unwrap()) as usize;
    let stored = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let payload = &bytes[28..];
    if payload.len() != length {
        return Err(StoreError::Truncated);
    }
    let actual = fnv1a(payload);
    if actual != stored {
        return Err(StoreError::ChecksumMismatch { stored, actual });
    }
    decode_snapshot(payload)
}

fn encode_snapshot(s: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, &s.quarter);
    put_u64(&mut out, s.n_reports);
    put_vocab(&mut out, s.drug_vocab());
    put_vocab(&mut out, s.adr_vocab());
    put_u64(&mut out, s.clusters.len() as u64);
    for c in &s.clusters {
        put_strs(&mut out, &c.drugs);
        put_strs(&mut out, &c.adrs);
        put_f64(&mut out, c.score);
        put_u64(&mut out, c.support);
        put_f64(&mut out, c.confidence);
        put_f64(&mut out, c.lift);
        out.push(c.max_severity);
        out.push(c.known as u8);
        out.push(c.has_novel_adr as u8);
        put_u64(&mut out, c.case_ids.len() as u64);
        for &id in &c.case_ids {
            put_u64(&mut out, id);
        }
        put_u64(&mut out, c.context.len() as u64);
        for ctx in &c.context {
            put_strs(&mut out, &ctx.drugs);
            put_strs(&mut out, &ctx.adrs);
            put_u64(&mut out, ctx.support);
            put_f64(&mut out, ctx.confidence);
            put_f64(&mut out, ctx.lift);
        }
        put_scores(&mut out, &c.scores);
    }
    // Format v3: the filter-grid posting indexes as hybrid containers, so
    // the load path deserializes exactly what the query path intersects.
    put_str_sets(&mut out, &s.drug_index);
    put_str_sets(&mut out, &s.adr_index);
    put_u64(&mut out, s.severity_at_least.len() as u64);
    for set in &s.severity_at_least {
        maras_tidset::encode_set(&mut out, set);
    }
    let mut by_n: Vec<(&usize, &TidSet)> = s.n_drugs_index.iter().collect();
    by_n.sort_unstable_by_key(|(n, _)| **n);
    put_u64(&mut out, by_n.len() as u64);
    for (n, set) in by_n {
        put_u64(&mut out, *n as u64);
        maras_tidset::encode_set(&mut out, set);
    }
    out
}

/// A string-keyed posting index, keys sorted so encoding is
/// deterministic for a given snapshot.
fn put_str_sets(out: &mut Vec<u8>, index: &FxHashMap<String, TidSet>) {
    let mut entries: Vec<(&String, &TidSet)> = index.iter().collect();
    entries.sort_unstable_by_key(|(k, _)| *k);
    put_u64(out, entries.len() as u64);
    for (key, set) in entries {
        put_str(out, key);
        maras_tidset::encode_set(out, set);
    }
}

/// Score block, format v2: the 2×2 table, every disproportionality
/// measure, and the cluster-level scores, in a fixed field order.
fn put_scores(out: &mut Vec<u8>, s: &SignalScores) {
    put_u64(out, s.table.a);
    put_u64(out, s.table.b);
    put_u64(out, s.table.c);
    put_u64(out, s.table.d);
    put_f64(out, s.rrr);
    put_f64(out, s.prr.estimate);
    put_f64(out, s.prr.lower);
    put_f64(out, s.prr.upper);
    put_f64(out, s.ror.estimate);
    put_f64(out, s.ror.lower);
    put_f64(out, s.ror.upper);
    put_f64(out, s.chi2);
    out.push(s.evans as u8);
    put_f64(out, s.ic.ic);
    put_f64(out, s.ic.ic025);
    put_f64(out, s.ic.ic975);
    put_f64(out, s.ebgm.ebgm);
    put_f64(out, s.ebgm.eb05);
    put_f64(out, s.ebgm.eb95);
    put_f64(out, s.ebgm.posterior_w1);
    put_f64(out, s.interaction);
    put_f64(out, s.exclusiveness);
}

fn decode_snapshot(payload: &[u8]) -> Result<Snapshot, StoreError> {
    let mut r = Reader { buf: payload, pos: 0 };
    let quarter = r.str()?;
    let n_reports = r.u64()?;
    let drug_vocab = r.vocab()?;
    let adr_vocab = r.vocab()?;
    let n_clusters = r.u64()? as usize;
    let mut clusters = Vec::with_capacity(n_clusters.min(1 << 20));
    for _ in 0..n_clusters {
        let drugs = r.strs()?;
        let adrs = r.strs()?;
        let score = r.f64()?;
        let support = r.u64()?;
        let confidence = r.f64()?;
        let lift = r.f64()?;
        let max_severity = r.u8()?;
        let known = r.u8()? != 0;
        let has_novel_adr = r.u8()? != 0;
        let n_cases = r.u64()? as usize;
        let mut case_ids = Vec::with_capacity(n_cases.min(1 << 20));
        for _ in 0..n_cases {
            case_ids.push(r.u64()?);
        }
        let n_ctx = r.u64()? as usize;
        let mut context = Vec::with_capacity(n_ctx.min(1 << 20));
        for _ in 0..n_ctx {
            context.push(ContextEntry {
                drugs: r.strs()?,
                adrs: r.strs()?,
                support: r.u64()?,
                confidence: r.f64()?,
                lift: r.f64()?,
            });
        }
        let scores = r.scores()?;
        clusters.push(ClusterEntry {
            drugs,
            adrs,
            score,
            support,
            confidence,
            lift,
            max_severity,
            known,
            has_novel_adr,
            case_ids,
            context,
            scores,
        });
    }
    let drug_index = r.str_sets(n_clusters)?;
    let adr_index = r.str_sets(n_clusters)?;
    let n_sev = r.u64()? as usize;
    let mut severity_at_least = Vec::with_capacity(n_sev.min(64));
    for _ in 0..n_sev {
        severity_at_least.push(r.set(n_clusters)?);
    }
    let n_card = r.u64()? as usize;
    let mut n_drugs_index: FxHashMap<usize, TidSet> = FxHashMap::default();
    for _ in 0..n_card {
        let n = r.u64()? as usize;
        if n_drugs_index.insert(n, r.set(n_clusters)?).is_some() {
            return Err(StoreError::Corrupt("duplicate cardinality index key"));
        }
    }
    if r.pos != payload.len() {
        return Err(StoreError::Corrupt("trailing bytes after posting indexes"));
    }
    Ok(Snapshot::assemble(
        quarter,
        n_reports,
        drug_vocab,
        adr_vocab,
        clusters,
        drug_index,
        adr_index,
        severity_at_least,
        n_drugs_index,
    ))
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_strs(out: &mut Vec<u8>, ss: &[String]) {
    put_u64(out, ss.len() as u64);
    for s in ss {
        put_str(out, s);
    }
}

fn put_vocab(out: &mut Vec<u8>, v: &Vocabulary) {
    put_u64(out, v.len() as u64);
    for id in 0..v.len() as u32 {
        put_str(out, v.term(id));
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Corrupt("length overflow"))?;
        if end > self.buf.len() {
            return Err(StoreError::Corrupt("length prefix past end of payload"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let n = self.u64()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt("non-UTF-8 string"))
    }

    fn strs(&mut self) -> Result<Vec<String>, StoreError> {
        let n = self.u64()? as usize;
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(self.str()?);
        }
        Ok(out)
    }

    /// Mirrors `put_scores` field for field.
    fn scores(&mut self) -> Result<SignalScores, StoreError> {
        let table =
            ContingencyTable { a: self.u64()?, b: self.u64()?, c: self.u64()?, d: self.u64()? };
        let rrr = self.f64()?;
        let prr = self.ci()?;
        let ror = self.ci()?;
        let chi2 = self.f64()?;
        let evans = self.u8()? != 0;
        let ic = InformationComponent { ic: self.f64()?, ic025: self.f64()?, ic975: self.f64()? };
        let ebgm = EbgmScores {
            ebgm: self.f64()?,
            eb05: self.f64()?,
            eb95: self.f64()?,
            posterior_w1: self.f64()?,
        };
        let interaction = self.f64()?;
        let exclusiveness = self.f64()?;
        Ok(SignalScores { table, rrr, prr, ror, chi2, evans, ic, ebgm, interaction, exclusiveness })
    }

    fn ci(&mut self) -> Result<ConfidenceInterval, StoreError> {
        Ok(ConfidenceInterval { estimate: self.f64()?, lower: self.f64()?, upper: self.f64()? })
    }

    /// One compressed posting set; container validation (canonical
    /// density, sorted members, cardinality/popcount agreement) happens
    /// in the tidset wire decoder, and the ranks must stay within the
    /// cluster table the query path indexes into.
    fn set(&mut self, n_clusters: usize) -> Result<TidSet, StoreError> {
        let set = maras_tidset::decode_set(self.buf, &mut self.pos).map_err(StoreError::Corrupt)?;
        if set.last().is_some_and(|max| max as usize >= n_clusters) {
            return Err(StoreError::Corrupt("posting rank beyond cluster table"));
        }
        Ok(set)
    }

    /// A string-keyed posting index section.
    fn str_sets(&mut self, n_clusters: usize) -> Result<FxHashMap<String, TidSet>, StoreError> {
        let n = self.u64()? as usize;
        let mut index = FxHashMap::default();
        index.reserve(n.min(1 << 20));
        for _ in 0..n {
            let key = self.str()?;
            let set = self.set(n_clusters)?;
            if index.insert(key, set).is_some() {
                return Err(StoreError::Corrupt("duplicate posting index key"));
            }
        }
        Ok(index)
    }

    fn vocab(&mut self) -> Result<Vocabulary, StoreError> {
        let n = self.u64()? as usize;
        let mut terms = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            terms.push(self.str()?);
        }
        Ok(Vocabulary::from_terms(terms))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_core::{Pipeline, PipelineConfig, RuleQuery};
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn snapshot() -> Snapshot {
        let mut synth = Synthesizer::new(SynthConfig::test_scale(57));
        let quarter = synth.generate_quarter(QuarterId::new(2015, 3));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        Snapshot::build("2015 Q3", &result, &dv, &av, None)
    }

    #[test]
    fn roundtrip_preserves_clusters_and_queries() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("maras-store-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.snap");
        save(&snap, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.quarter, snap.quarter);
        assert_eq!(loaded.n_reports, snap.n_reports);
        assert_eq!(loaded.clusters, snap.clusters);
        let q = RuleQuery::new().with_min_severity(3);
        assert_eq!(loaded.query(&q), snap.query(&q));
        // Score blocks survive bit-exactly, and the rebuilt per-measure
        // indexes answer score filters and sorts identically.
        for (a, b) in loaded.clusters.iter().zip(&snap.clusters) {
            assert_eq!(a.scores, b.scores);
        }
        let q = RuleQuery::new().with_min_prr(2.0).with_min_ror(1.5);
        assert_eq!(loaded.query(&q), snap.query(&q));
        let all = snap.query(&RuleQuery::new());
        for sort_by in [crate::snapshot::SortBy::Prr, crate::snapshot::SortBy::Ebgm] {
            assert_eq!(
                loaded.sort_ranks(all.clone(), sort_by),
                snap.sort_ranks(all.clone(), sort_by)
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_pre_v3_files() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("maras-store-oldver");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.snap");
        for old in [1u32, 2] {
            save(&snap, &path).unwrap();
            let mut bytes = fs::read(&path).unwrap();
            // A genuine v1/v2 file differs in payload too (v2 has no
            // posting-index sections), but version alone must already
            // refuse it — the payload is never parsed.
            bytes[8..12].copy_from_slice(&old.to_le_bytes());
            fs::write(&path, &bytes).unwrap();
            match load(&path) {
                Err(StoreError::BadVersion(v)) => assert_eq!(v, old),
                other => panic!("version {old} accepted: {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refuses_bad_magic_version_truncation_and_bitflips() {
        let snap = snapshot();
        let dir = std::env::temp_dir().join("maras-store-refuse");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("q.snap");
        save(&snap, &path).unwrap();
        let good = fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] ^= 0xff;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(StoreError::BadMagic)));

        let mut bad = good.clone();
        bad[8] = 99;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(StoreError::BadVersion(99))));

        fs::write(&path, &good[..good.len() - 5]).unwrap();
        assert!(matches!(load(&path), Err(StoreError::Truncated)));

        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(load(&path), Err(StoreError::ChecksumMismatch { .. })));

        fs::write(&path, &good).unwrap();
        assert!(load(&path).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }
}
