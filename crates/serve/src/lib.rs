//! Serving layer for MARAS analytics: indexed snapshots, versioned
//! persistence, and a std-only concurrent HTTP query server.
//!
//! The thesis's §4.1 interactive interface is a query loop over one
//! quarter's ranked MCACs. This crate turns that loop into a service:
//!
//! * [`snapshot`] — an immutable [`Snapshot`](snapshot::Snapshot) built
//!   once per analysis, with inverted indexes (drug → clusters,
//!   ADR → clusters, severity buckets, antecedent cardinality) and
//!   prefix autocomplete, so every [`RuleQuery`](maras_core::RuleQuery)
//!   dispatches through index intersection instead of a full scan —
//!   with results guaranteed identical to the scan path.
//! * [`store`] — versioned binary persistence (magic, format version,
//!   FNV-1a checksum; refuses mismatches) with atomic temp-file +
//!   rename writes.
//! * [`server`] + [`router`] + [`http`] — an HTTP/1.1 JSON API on
//!   `std::net` and a fixed thread pool: `/search`, `/autocomplete`,
//!   `/cluster/<rank>`, `/cluster/<rank>/reports` and
//!   `/report/<case-id>` (raw case evidence paged from a
//!   [`maras_evidence`] archive when the server is given one),
//!   `/healthz`, and `POST /reload` for atomic hot snapshot(+archive)
//!   swaps that never block readers. The runtime is hardened
//!   for hostile traffic: a **bounded admission queue** sheds overload
//!   with immediate 503s, per-socket **I/O deadlines** cut off
//!   slowloris clients and dead peers, workers **self-heal** through
//!   handler panics (`catch_unwind` + liveness gauge), reloads are
//!   serialized (concurrent `POST /reload` → 409), and shutdown is a
//!   **graceful drain** (`/healthz` flips to 503 `draining`, in-flight
//!   and queued work finishes inside a bounded window).
//! * [`chaos`] — a deterministic, seeded misbehaving-client injector
//!   (slowloris, header floods, abort-mid-body, connection floods) that
//!   the chaos suite replays with exact shed/timeout/panic ledgers.
//! * [`debug`] — request correlation and the flight recorder: every
//!   connection gets a [`RequestId`](debug::RequestId) at accept time,
//!   echoed as `x-maras-request-id` on *every* response path (including
//!   sheds, timeouts, and recovered panics) and attached to every log
//!   event the request produces; `GET /debug/logs`, `/debug/requests`,
//!   and `/debug/runtime` serve the in-memory log ring, the last-N
//!   notable requests with phase timings, and a runtime health dump
//!   (all three gated by `ServeConfig::debug_endpoints`).
//! * [`cache`] + [`metrics`] — a sharded LRU over rendered responses
//!   (invalidated on swap) and lock-free per-endpoint counters and
//!   latency histograms, exposed as Prometheus text on `/metrics` and
//!   as the legacy JSON dump on `/metrics.json`. Requests slower than
//!   [`ServeState::slow_threshold_us`](router::ServeState) are logged
//!   and counted; every request records parse/route/cache/render spans
//!   into [`maras_obs`].
//!
//! No dependencies beyond the workspace: the whole server is `std`.

#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod debug;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;
pub mod snapshot;
pub mod store;

pub use cache::QueryCache;
pub use debug::{FlightRecorder, RequestId, RequestRecord, REQUEST_ID_HEADER};
pub use metrics::{Endpoint, Metrics};
pub use router::{respond, ReloadError, ServeState, DEFAULT_SLOW_THRESHOLD_US};
pub use server::{serve, serve_with, ServeConfig, ServerHandle};
pub use snapshot::{scores_json, ClusterEntry, ContextEntry, Snapshot, SortBy};
pub use store::{load, save, StoreError, FORMAT_VERSION, MAGIC};
