//! Deterministic misbehaving-client injector for chaos-testing the
//! server, in the spirit of the ingest layer's seeded fault harness
//! (`faers::faults`): every scenario is driven by a seeded PRNG, so a
//! failing run replays byte-for-byte and tests can assert an *exact*
//! ledger of shed / timeout / panic counters rather than "something
//! broke".
//!
//! Scenarios are plain blocking socket clients (the server under test
//! owns all the threads): byte-at-a-time slowloris, newline-free header
//! floods, abort-mid-body writes, stalled connections for queue
//! engineering, and connection floods. [`probe_healthz`] is the
//! recovery oracle: after every scenario the server must answer a
//! health probe within a deadline with all workers alive.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// xorshift64* — a tiny deterministic PRNG so the injector needs no
/// dependencies and every scenario replays exactly from its seed.
#[derive(Debug, Clone)]
pub struct SeededRng(u64);

impl SeededRng {
    /// A generator for the given seed (0 is remapped — xorshift fixpoint).
    pub fn new(seed: u64) -> SeededRng {
        SeededRng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `[lo, hi)`; `lo` when the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            lo + self.next_u64() % (hi - lo)
        }
    }
}

/// What one injected scenario observed, for building expected ledgers.
#[derive(Debug)]
pub struct Outcome {
    /// HTTP status parsed from a response, if the server sent one.
    pub status: Option<u16>,
    /// Bytes this client managed to write before stopping.
    pub bytes_sent: usize,
    /// Whether the server closed the connection on us.
    pub server_closed: bool,
}

/// Seeded misbehaving-client scenarios against a live server address.
#[derive(Debug)]
pub struct Injector {
    rng: SeededRng,
}

impl Injector {
    /// An injector whose byte payloads and jitter derive from `seed`.
    pub fn new(seed: u64) -> Injector {
        Injector { rng: SeededRng::new(seed) }
    }

    /// Byte-at-a-time slowloris: drips one header byte (never a
    /// newline) every `pace`, until the server closes the connection or
    /// `give_up` elapses. A hardened server must cut this client off
    /// once its I/O deadline expires, releasing the worker.
    pub fn slowloris(&mut self, addr: SocketAddr, pace: Duration, give_up: Duration) -> Outcome {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return Outcome { status: None, bytes_sent: 0, server_closed: true },
        };
        // Poll for a server response/close between drips without
        // blocking the drip cadence.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
        let deadline = Instant::now() + give_up;
        let mut sent = 0usize;
        let mut status = None;
        let mut closed = false;
        let mut response = Vec::new();
        while Instant::now() < deadline {
            // Lowercase header-ish noise; never '\n', so no line ever
            // completes and a naive reader buffers forever.
            let byte = b'a' + (self.rng.gen_range(0, 26) as u8);
            match stream.write_all(&[byte]) {
                Ok(()) => sent += 1,
                Err(_) => {
                    closed = true;
                    break;
                }
            }
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => {
                    closed = true;
                    break;
                }
                Ok(n) => {
                    response.extend_from_slice(&buf[..n]);
                    status = parse_status(&response);
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => {
                    closed = true;
                    break;
                }
            }
            std::thread::sleep(pace);
        }
        Outcome { status, bytes_sent: sent, server_closed: closed }
    }

    /// Newline-free header flood: one request line of `total` bytes
    /// with no `\n` anywhere, then a read for the verdict. A bounded
    /// parser answers 413 without ever buffering the whole flood.
    pub fn header_flood(&mut self, addr: SocketAddr, total: usize) -> Outcome {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return Outcome { status: None, bytes_sent: 0, server_closed: true },
        };
        let mut payload = b"GET /".to_vec();
        while payload.len() < total {
            payload.push(b'A' + (self.rng.gen_range(0, 26) as u8));
        }
        let mut sent = 0usize;
        let mut closed = false;
        // Write until the server rejects us or the payload is gone; the
        // server may close mid-flood, which is success for it.
        for chunk in payload.chunks(4096) {
            match stream.write_all(chunk) {
                Ok(()) => sent += chunk.len(),
                Err(_) => {
                    closed = true;
                    break;
                }
            }
        }
        let status = read_response_status(&mut stream, Duration::from_millis(2_000));
        Outcome { status, bytes_sent: sent, server_closed: closed || status.is_none() }
    }

    /// Abort-mid-body: declares a `Content-Length`, writes only part of
    /// the body, then slams the connection shut. The worker must treat
    /// the dangling read as a dead peer and move on.
    pub fn abort_mid_body(&mut self, addr: SocketAddr) -> Outcome {
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => return Outcome { status: None, bytes_sent: 0, server_closed: true },
        };
        let declared = self.rng.gen_range(64, 256);
        let partial = (declared / 2) as usize;
        let head = format!("POST /reload HTTP/1.1\r\ncontent-length: {declared}\r\n\r\n");
        let mut sent = 0usize;
        if stream.write_all(head.as_bytes()).is_ok() {
            sent += head.len();
        }
        let body: Vec<u8> = (0..partial).map(|_| b'x').collect();
        if stream.write_all(&body).is_ok() {
            sent += body.len();
        }
        // RST-ish abort: drop without reading or finishing the body.
        drop(stream);
        Outcome { status: None, bytes_sent: sent, server_closed: false }
    }
}

/// Opens a connection that sends nothing at all — a stalled client that
/// occupies whatever resource the server gives it until a deadline
/// fires. Used to pin a worker while a test engineers queue pressure.
pub fn open_stalled(addr: SocketAddr) -> std::io::Result<TcpStream> {
    TcpStream::connect(addr)
}

/// Opens a connection and writes a complete GET request without reading
/// the response yet — used to park well-formed work in the admission
/// queue. Read the response later with [`read_response_status`].
pub fn open_request(addr: SocketAddr, target: &str) -> std::io::Result<TcpStream> {
    let mut stream = TcpStream::connect(addr)?;
    let req = format!("GET {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n");
    stream.write_all(req.as_bytes())?;
    Ok(stream)
}

/// Sends one complete GET request and reads the response status.
pub fn get_status(addr: SocketAddr, target: &str, within: Duration) -> Option<u16> {
    let mut stream = open_request(addr, target).ok()?;
    read_response_status(&mut stream, within)
}

/// Sends one well-formed request and returns `(status, body)` — the
/// polite-client baseline the chaos scenarios are contrasted against.
pub fn request_raw(
    addr: SocketAddr,
    method: &str,
    target: &str,
    within: Duration,
) -> (Option<u16>, String) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (None, String::new());
    };
    let req = format!("{method} {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n");
    if stream.write_all(req.as_bytes()).is_err() {
        return (None, String::new());
    }
    let raw = read_raw(&mut stream, within);
    let status = parse_status(&raw);
    let text = String::from_utf8_lossy(&raw);
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// [`request_raw`] that also extracts the `x-maras-request-id` response
/// header, so correlation tests can match a response to the log event
/// and flight-recorder entry it produced server-side.
pub fn request_with_id(
    addr: SocketAddr,
    method: &str,
    target: &str,
    within: Duration,
) -> (Option<u16>, Option<String>, String) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (None, None, String::new());
    };
    let req = format!("{method} {target} HTTP/1.1\r\nhost: chaos\r\nconnection: close\r\n\r\n");
    if stream.write_all(req.as_bytes()).is_err() {
        return (None, None, String::new());
    }
    let raw = read_raw(&mut stream, within);
    let status = parse_status(&raw);
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h, b.to_string()),
        None => (text.as_ref(), String::new()),
    };
    let id = parse_request_id(head);
    (status, id, body)
}

/// Pulls the request id out of a raw response head, if the header is
/// present.
pub fn parse_request_id(head: &str) -> Option<String> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case(crate::debug::REQUEST_ID_HEADER)
            .then(|| value.trim().to_string())
    })
}

/// Reads until EOF (or `within` elapses) and parses the status line.
pub fn read_response_status(stream: &mut TcpStream, within: Duration) -> Option<u16> {
    let raw = read_raw(stream, within);
    parse_status(&raw)
}

fn read_raw(stream: &mut TcpStream, within: Duration) -> Vec<u8> {
    let _ = stream.set_read_timeout(Some(within));
    let deadline = Instant::now() + within;
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    while Instant::now() < deadline {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    raw
}

/// The recovery oracle: retries `GET /healthz` until it answers 200 or
/// the deadline passes. Returns the last status seen (if any).
pub fn probe_healthz(addr: SocketAddr, within: Duration) -> Option<u16> {
    let deadline = Instant::now() + within;
    let mut last = None;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return last;
        }
        if let Some(status) = get_status(addr, "/healthz", remaining) {
            last = Some(status);
            if status == 200 {
                return last;
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn parse_status(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    let line = text.lines().next()?;
    line.strip_prefix("HTTP/1.1 ")?.split_whitespace().next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SeededRng::new(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SeededRng::new(43);
        assert_ne!(a[0], r.next_u64());
        for _ in 0..100 {
            let v = r.gen_range(5, 10);
            assert!((5..10).contains(&v));
        }
    }

    #[test]
    fn status_line_parsing() {
        assert_eq!(parse_status(b"HTTP/1.1 503 Service Unavailable\r\n\r\n"), Some(503));
        assert_eq!(parse_status(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\n\r\n{}"), Some(200));
        assert_eq!(parse_status(b"garbage"), None);
        assert_eq!(parse_status(b""), None);
    }
}
