//! Request correlation and the per-request flight recorder.
//!
//! Every accepted connection gets a [`RequestId`] at the accept side —
//! before it touches the admission queue — so even a connection that is
//! shed, times out mid-headers, or panics its handler has an identity.
//! The id is scrambled from a process seed plus an accept sequence
//! number through an xorshift64* finisher (the same generator family as
//! `serve::chaos::SeededRng` and the ingest fault harness), rendered as
//! 16 hex characters, echoed to the client in the
//! [`REQUEST_ID_HEADER`] response header, and attached to every log
//! event the request produces.
//!
//! [`FlightRecorder`] keeps the last-N *notable* requests (slow, shed,
//! timed out, errored, panicked) with their phase timings, served by
//! `GET /debug/requests`. It is a bounded ring like the log buffer:
//! newest entries win, memory stays fixed.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Response header echoing the request's [`RequestId`] on every path —
/// normal responses, sheds, timeouts, and recovered panics alike.
pub const REQUEST_ID_HEADER: &str = "x-maras-request-id";

/// Default cap on retained notable-request records.
pub const DEFAULT_RECENT_REQUESTS: usize = 128;

/// A process-unique request identifier, rendered as 16 hex characters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Issues the next id: a relaxed sequence counter scrambled with the
    /// process seed through xorshift64*, so ids are unique within a
    /// process (the counter) and unpredictable across restarts (the
    /// seed) without any shared lock.
    pub fn next() -> RequestId {
        static SEED: OnceLock<u64> = OnceLock::new();
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seed = *SEED.get_or_init(|| {
            SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9E37_79B9)
                .max(1)
        });
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut x = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        RequestId(x.wrapping_mul(0x2545_F491_4F6C_DD1D))
    }

    /// The raw 64-bit value.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One notable request as the flight recorder remembers it.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The request's correlation id.
    pub id: RequestId,
    /// Request line summary (`GET /search?...`), the partial request
    /// line a cut-off client managed to send, or `<unparsed request>`.
    pub what: String,
    /// Response status written (or attempted).
    pub status: u16,
    /// Classified outcome: `slow`, `shed`, `timeout`, `too_large`,
    /// `malformed`, `panic`, or `error`.
    pub outcome: &'static str,
    /// Total wall time handling the request, microseconds.
    pub total_us: u64,
    /// Parse-phase wall time, microseconds.
    pub parse_us: u64,
    /// Route-phase wall time, microseconds.
    pub route_us: u64,
    /// Write-phase wall time, microseconds.
    pub write_us: u64,
    /// Wall-clock completion time, milliseconds since the Unix epoch.
    pub ts_ms: u64,
}

/// Bounded ring of the last-N notable requests, shared across workers.
pub struct FlightRecorder {
    cap: usize,
    ring: Mutex<VecDeque<RequestRecord>>,
    recorded: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining at most `cap` records (min 1).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
        }
    }

    /// Appends a record, evicting the oldest beyond capacity.
    pub fn record(&self, record: RequestRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        while ring.len() >= self.cap {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The newest `limit` records, newest first.
    pub fn tail(&self, limit: usize) -> Vec<RequestRecord> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.iter().rev().take(limit).cloned().collect()
    }

    /// Notable requests recorded since startup (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing notable has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

thread_local! {
    /// The id of the request the current worker thread is handling, so
    /// events emitted deep inside the router (reload, evidence reads)
    /// carry the id without threading it through every signature.
    static CURRENT: std::cell::Cell<Option<RequestId>> = const { std::cell::Cell::new(None) };
}

/// Sets (or clears) the calling thread's current request id.
pub fn set_current_request(id: Option<RequestId>) {
    CURRENT.with(|c| c.set(id));
}

/// The calling thread's current request id, if a request is in flight.
pub fn current_request() -> Option<RequestId> {
    CURRENT.with(std::cell::Cell::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_unique_and_hex_rendered() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = RequestId::next();
            assert!(seen.insert(id.as_u64()), "duplicate id {id}");
            let text = id.to_string();
            assert_eq!(text.len(), 16);
            assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn flight_recorder_keeps_newest_and_counts_all() {
        let rec = FlightRecorder::new(3);
        assert!(rec.is_empty());
        for i in 0..5_u64 {
            rec.record(RequestRecord {
                id: RequestId::next(),
                what: format!("GET /{i}"),
                status: 200,
                outcome: "slow",
                total_us: i,
                parse_us: 0,
                route_us: 0,
                write_us: 0,
                ts_ms: 0,
            });
        }
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.len(), 3);
        let tail = rec.tail(10);
        let whats: Vec<&str> = tail.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(whats, vec!["GET /4", "GET /3", "GET /2"], "newest first");
        assert_eq!(rec.tail(1).len(), 1);
    }

    #[test]
    fn current_request_is_thread_local() {
        let id = RequestId::next();
        assert_eq!(current_request(), None);
        set_current_request(Some(id));
        assert_eq!(current_request(), Some(id));
        std::thread::spawn(|| assert_eq!(current_request(), None)).join().unwrap();
        set_current_request(None);
        assert_eq!(current_request(), None);
    }
}
