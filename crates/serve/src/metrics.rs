//! Lock-free server metrics: per-endpoint request counters and latency
//! histograms, cache hit/miss counts, robustness counters (shed /
//! timeout / recovered-panic totals plus worker-liveness, queue-depth
//! and in-flight gauges), and both exposition formats.
//!
//! Everything is `AtomicU64` with relaxed ordering — the numbers are
//! monitoring data, not synchronization, so torn cross-counter reads
//! (e.g. a request counted but its latency not yet recorded) are
//! acceptable and each individual counter is still exact.
//!
//! Two render paths share these counters: [`Metrics::to_json`] preserves
//! the legacy `/metrics.json` schema (global histogram, summed across
//! endpoints), and [`Metrics::to_prometheus`] emits text exposition
//! v0.0.4 with one `maras_request_latency_us` histogram per endpoint.
//! Reloads only ever *increment* `maras_snapshot_reloads_total`; no
//! cumulative series resets on a snapshot swap.

use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is the +Inf overflow.
pub const LATENCY_BUCKETS_US: [u64; 10] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000];

/// Endpoints the server distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics` (Prometheus) and `GET /metrics.json`
    Metrics,
    /// `GET /search`
    Search,
    /// `GET /autocomplete`
    Autocomplete,
    /// `GET /cluster/<rank>`
    Cluster,
    /// `POST /reload`
    Reload,
    /// Anything else (404s, bad methods, parse failures).
    Other,
    /// `GET /cluster/<rank>/reports` (paginated evidence drill-down).
    Reports,
    /// `GET /report/<case_id>` (single-record evidence lookup).
    Report,
    /// `GET /debug/*` (flight-recorder introspection suite).
    Debug,
}

const N_ENDPOINTS: usize = 10;

impl Endpoint {
    fn idx(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Search => 2,
            Endpoint::Autocomplete => 3,
            Endpoint::Cluster => 4,
            Endpoint::Reload => 5,
            Endpoint::Other => 6,
            // Appended after the original seven so every pre-existing
            // series keeps its index (and its `/metrics.json` key order).
            Endpoint::Reports => 7,
            Endpoint::Report => 8,
            Endpoint::Debug => 9,
        }
    }

    fn name(i: usize) -> &'static str {
        [
            "healthz",
            "metrics",
            "search",
            "autocomplete",
            "cluster",
            "reload",
            "other",
            "reports",
            "report",
            "debug",
        ][i]
    }
}

/// One endpoint's request count and latency histogram.
#[derive(Default)]
struct EndpointSeries {
    requests: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_total_us: AtomicU64,
}

impl EndpointSeries {
    fn bucket_counts(&self) -> Vec<u64> {
        self.latency.iter().map(|c| c.load(Ordering::Relaxed)).collect()
    }
}

/// Shared server metrics; cheap to record from any worker thread.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointSeries; N_ENDPOINTS],
    errors: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
    slow_requests: AtomicU64,
    shed: AtomicU64,
    timeouts: AtomicU64,
    worker_panics: AtomicU64,
    workers_alive: AtomicU64,
    queue_used: AtomicU64,
    in_flight: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one served request with its wall latency.
    pub fn record(&self, endpoint: Endpoint, latency_us: u64, is_error: bool) {
        let series = &self.endpoints[endpoint.idx()];
        series.requests.fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| latency_us <= ub)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        series.latency[bucket].fetch_add(1, Ordering::Relaxed);
        series.latency_total_us.fetch_add(latency_us, Ordering::Relaxed);
    }

    /// Records a request that exceeded the slow-request threshold.
    pub fn slow_request(&self) {
        self.slow_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Slow requests so far.
    pub fn slow_requests(&self) -> u64 {
        self.slow_requests.load(Ordering::Relaxed)
    }

    /// Records a connection shed with 503 (full queue or draining).
    pub fn shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Connections shed so far.
    pub fn sheds(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Records a connection dropped after exceeding its I/O deadline.
    pub fn timeout(&self) {
        self.timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Connection timeouts so far.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// Records a handler panic caught and recovered by a worker.
    pub fn worker_panic(&self) {
        self.worker_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics recovered so far.
    pub fn worker_panics(&self) -> u64 {
        self.worker_panics.load(Ordering::Relaxed)
    }

    /// A worker thread entered its serve loop.
    pub fn worker_started(&self) {
        self.workers_alive.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread exited (clean shutdown or death).
    pub fn worker_exited(&self) {
        self.workers_alive.fetch_sub(1, Ordering::Relaxed);
    }

    /// Worker threads currently alive (the liveness gauge).
    pub fn workers_alive(&self) -> u64 {
        self.workers_alive.load(Ordering::Relaxed)
    }

    /// A connection was admitted into the bounded accept queue.
    pub fn enqueued(&self) {
        self.queue_used.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection left the accept queue (picked up or shed).
    pub fn dequeued(&self) {
        self.queue_used.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently waiting in the accept queue.
    pub fn queue_used(&self) -> u64 {
        self.queue_used.load(Ordering::Relaxed)
    }

    /// A worker began handling a connection.
    pub fn request_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker finished handling a connection.
    pub fn request_finished(&self) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Requests currently being handled by workers.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Records a response-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed snapshot reload. Strictly increments — request
    /// and latency series are cumulative across reloads by design.
    pub fn reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints.iter().map(|e| e.requests.load(Ordering::Relaxed)).sum()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Global per-bucket latency counts (all endpoints summed), including
    /// the trailing +Inf overflow bucket.
    fn global_buckets(&self) -> [u64; LATENCY_BUCKETS_US.len() + 1] {
        let mut out = [0u64; LATENCY_BUCKETS_US.len() + 1];
        for series in &self.endpoints {
            for (slot, c) in out.iter_mut().zip(&series.latency) {
                *slot += c.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Approximate global latency quantile in µs, linearly interpolated
    /// within the containing bucket (a quantile landing in the overflow
    /// bucket is clamped to the last finite bound). `None` before any
    /// request was recorded.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let bounds: Vec<f64> = LATENCY_BUCKETS_US.iter().map(|&ub| ub as f64).collect();
        maras_obs::quantile_from_buckets(&bounds, &self.global_buckets(), q)
    }

    /// Renders the full counter set as JSON for `GET /metrics.json`.
    pub fn to_json(&self) -> Value {
        let requests = Value::obj((0..N_ENDPOINTS).map(|i| {
            (Endpoint::name(i), Value::from(self.endpoints[i].requests.load(Ordering::Relaxed)))
        }));
        let global = self.global_buckets();
        let histogram = Value::arr((0..global.len()).map(|i| {
            let le = LATENCY_BUCKETS_US
                .get(i)
                .map_or_else(|| Value::from("+Inf"), |&ub| Value::from(ub));
            Value::obj([("le_us", le), ("count", Value::from(global[i]))])
        }));
        let total_us: u64 =
            self.endpoints.iter().map(|e| e.latency_total_us.load(Ordering::Relaxed)).sum();
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        Value::obj([
            ("requests", requests),
            ("errors", Value::from(self.errors.load(Ordering::Relaxed))),
            ("latency_us", Value::obj([("buckets", histogram), ("total", Value::from(total_us))])),
            (
                "cache",
                Value::obj([
                    ("hits", Value::from(hits)),
                    ("misses", Value::from(misses)),
                    (
                        "hit_rate",
                        if lookups == 0 {
                            Value::Null
                        } else {
                            Value::from(hits as f64 / lookups as f64)
                        },
                    ),
                ]),
            ),
            ("reloads", Value::from(self.reloads.load(Ordering::Relaxed))),
        ])
    }

    /// Renders the counter set as Prometheus text exposition v0.0.4 for
    /// `GET /metrics`. `cache_entries` is the response cache's current
    /// size (owned by the router, not these counters).
    pub fn to_prometheus(&self, cache_entries: usize) -> String {
        let bounds: Vec<f64> = LATENCY_BUCKETS_US.iter().map(|&ub| ub as f64).collect();
        let mut text = maras_obs::PromText::new();
        for (i, series) in self.endpoints.iter().enumerate() {
            text.counter(
                "maras_requests_total",
                "requests served, by endpoint",
                &[("endpoint", Endpoint::name(i))],
                series.requests.load(Ordering::Relaxed),
            );
        }
        text.counter(
            "maras_request_errors_total",
            "requests answered with status >= 400",
            &[],
            self.errors.load(Ordering::Relaxed),
        );
        for (i, series) in self.endpoints.iter().enumerate() {
            text.histogram(
                "maras_request_latency_us",
                "request wall latency in microseconds, by endpoint",
                &[("endpoint", Endpoint::name(i))],
                &bounds,
                &series.bucket_counts(),
                series.latency_total_us.load(Ordering::Relaxed) as f64,
            );
        }
        for (q, name) in
            [(0.5, "maras_request_latency_p50_us"), (0.99, "maras_request_latency_p99_us")]
        {
            text.gauge(
                name,
                "interpolated global latency quantile in microseconds",
                &[],
                self.latency_quantile(q).unwrap_or(0.0),
            );
        }
        text.counter(
            "maras_cache_hits_total",
            "response-cache hits",
            &[],
            self.cache_hits.load(Ordering::Relaxed),
        );
        text.counter(
            "maras_cache_misses_total",
            "response-cache misses",
            &[],
            self.cache_misses.load(Ordering::Relaxed),
        );
        text.gauge("maras_cache_entries", "response-cache entries", &[], cache_entries as f64);
        text.counter(
            "maras_snapshot_reloads_total",
            "snapshot reloads completed",
            &[],
            self.reloads.load(Ordering::Relaxed),
        );
        text.counter(
            "maras_slow_requests_total",
            "requests slower than the slow-request threshold",
            &[],
            self.slow_requests.load(Ordering::Relaxed),
        );
        text.counter(
            "maras_serve_shed_total",
            "connections answered 503 by admission control (full queue or drain)",
            &[],
            self.shed.load(Ordering::Relaxed),
        );
        text.counter(
            "maras_serve_timeouts_total",
            "connections dropped after exceeding the socket I/O deadline",
            &[],
            self.timeouts.load(Ordering::Relaxed),
        );
        text.counter(
            "maras_serve_worker_panics_total",
            "handler panics caught and recovered by the worker pool",
            &[],
            self.worker_panics.load(Ordering::Relaxed),
        );
        text.gauge(
            "maras_serve_workers_alive",
            "worker threads currently alive",
            &[],
            self.workers_alive.load(Ordering::Relaxed) as f64,
        );
        text.gauge(
            "maras_serve_queue_used",
            "connections waiting in the bounded accept queue",
            &[],
            self.queue_used.load(Ordering::Relaxed) as f64,
        );
        text.gauge(
            "maras_serve_inflight",
            "requests currently being handled by workers",
            &[],
            self.in_flight.load(Ordering::Relaxed) as f64,
        );
        text.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Search, 120, false);
        m.record(Endpoint::Search, 30, false);
        m.record(Endpoint::Other, 999_999, true);
        m.cache_hit();
        m.cache_miss();
        m.cache_miss();
        m.reload();
        assert_eq!(m.total_requests(), 3);
        let json = m.to_json();
        assert_eq!(json["requests"]["search"], 2u64);
        assert_eq!(json["requests"]["other"], 1u64);
        assert_eq!(json["errors"], 1u64);
        assert_eq!(json["reloads"], 1u64);
        assert_eq!(json["cache"]["hits"], 1u64);
        assert_eq!(json["cache"]["misses"], 2u64);
        let rate = json["cache"]["hit_rate"].as_f64().unwrap();
        assert!((rate - 1.0 / 3.0).abs() < 1e-12);
        // 30µs lands in the ≤50 bucket, 120µs in ≤250, overflow in +Inf.
        let buckets = json["latency_us"]["buckets"].as_array().unwrap();
        assert_eq!(buckets[0]["count"], 1u64);
        assert_eq!(buckets[2]["count"], 1u64);
        assert_eq!(buckets.last().unwrap()["count"], 1u64);
    }

    #[test]
    fn hit_rate_is_null_before_any_lookup() {
        let m = Metrics::new();
        assert!(m.to_json()["cache"]["hit_rate"].is_null());
    }

    #[test]
    fn latency_quantile_interpolates_within_bucket() {
        let m = Metrics::new();
        assert_eq!(m.latency_quantile(0.99), None, "no observations yet");
        // 100 requests, all in the (100, 250] bucket.
        for _ in 0..100 {
            m.record(Endpoint::Search, 200, false);
        }
        // p50 is halfway into the bucket, p99 near its top — not the
        // bucket's upper bound for every quantile.
        assert_eq!(m.latency_quantile(0.5), Some(175.0));
        assert_eq!(m.latency_quantile(0.99), Some(248.5));
        // Overflow-bucket observations clamp to the last finite bound.
        let m2 = Metrics::new();
        m2.record(Endpoint::Search, 10_000_000, false);
        assert_eq!(m2.latency_quantile(0.99), Some(250_000.0));
    }

    #[test]
    fn reload_never_resets_cumulative_series() {
        let m = Metrics::new();
        m.record(Endpoint::Search, 100, false);
        m.record(Endpoint::Cluster, 100, true);
        m.cache_hit();
        let before = m.to_json();
        m.reload();
        m.reload();
        let after = m.to_json();
        assert_eq!(after["requests"], before["requests"]);
        assert_eq!(after["errors"], before["errors"]);
        assert_eq!(after["latency_us"], before["latency_us"]);
        assert_eq!(after["cache"]["hits"], before["cache"]["hits"]);
        assert_eq!(after["reloads"], 2u64);
        assert!(m.to_prometheus(0).contains("maras_snapshot_reloads_total 2"));
    }

    #[test]
    fn robustness_counters_render_as_serve_series() {
        let m = Metrics::new();
        m.shed();
        m.shed();
        m.timeout();
        m.worker_panic();
        m.worker_started();
        m.worker_started();
        m.worker_exited();
        m.enqueued();
        m.request_started();
        assert_eq!(m.sheds(), 2);
        assert_eq!(m.timeouts(), 1);
        assert_eq!(m.worker_panics(), 1);
        assert_eq!(m.workers_alive(), 1);
        assert_eq!(m.queue_used(), 1);
        assert_eq!(m.in_flight(), 1);
        let text = m.to_prometheus(0);
        assert!(text.contains("# TYPE maras_serve_shed_total counter"));
        assert!(text.contains("maras_serve_shed_total 2"));
        assert!(text.contains("maras_serve_timeouts_total 1"));
        assert!(text.contains("maras_serve_worker_panics_total 1"));
        assert!(text.contains("# TYPE maras_serve_workers_alive gauge"));
        assert!(text.contains("maras_serve_workers_alive 1"));
        assert!(text.contains("maras_serve_queue_used 1"));
        assert!(text.contains("maras_serve_inflight 1"));
        // The legacy JSON schema is frozen: robustness series are
        // Prometheus-only and must not leak into `/metrics.json`.
        let json = m.to_json();
        assert!(json.get("shed").is_none());
        assert!(json.get("timeouts").is_none());
    }

    #[test]
    fn metrics_json_schema_stays_frozen_for_existing_keys() {
        // Adding the evidence endpoints must be purely additive: the
        // legacy `/metrics.json` consumers keep every key they had, with
        // the same shapes, and the new endpoint counters appear alongside
        // the old ones instead of displacing them.
        let m = Metrics::new();
        m.record(Endpoint::Search, 100, false);
        m.record(Endpoint::Reports, 200, false);
        m.record(Endpoint::Report, 50, true);
        m.record(Endpoint::Debug, 25, false);
        let json = m.to_json();
        let top: Vec<&str> = match &json {
            Value::Object(o) => o.keys().map(String::as_str).collect(),
            _ => panic!("metrics.json is an object"),
        };
        assert_eq!(top, ["cache", "errors", "latency_us", "reloads", "requests"]);
        for legacy in ["healthz", "metrics", "search", "autocomplete", "cluster", "reload", "other"]
        {
            assert!(json["requests"].get(legacy).is_some(), "lost requests.{legacy}");
        }
        assert_eq!(json["requests"]["reports"], 1u64);
        assert_eq!(json["requests"]["report"], 1u64);
        assert_eq!(json["requests"]["debug"], 1u64);
        assert_eq!(json["errors"], 1u64);
        assert!(json["latency_us"]["buckets"].as_array().is_some());
        assert!(json["cache"].get("hit_rate").is_some());
        // The score engine's `maras_signals_*` and the set-algebra
        // kernels' `maras_tidset_*` series live in the shared Prometheus
        // registry only — like the robustness series, they are
        // append-only on `/metrics` and never grow the frozen JSON schema.
        assert!(json.get("signals").is_none());
        assert!(json.get("tidset").is_none());
        for (i, key) in ["cache", "errors", "latency_us", "reloads", "requests"].iter().enumerate()
        {
            assert_eq!(top[i], *key, "legacy key index {i} moved");
        }
    }

    #[test]
    fn prometheus_exposition_has_per_endpoint_series() {
        let m = Metrics::new();
        m.record(Endpoint::Search, 120, false);
        m.record(Endpoint::Healthz, 10, false);
        m.slow_request();
        let text = m.to_prometheus(3);
        assert!(text.contains("# TYPE maras_requests_total counter"));
        assert!(text.contains("maras_requests_total{endpoint=\"search\"} 1"));
        assert!(text.contains("maras_requests_total{endpoint=\"healthz\"} 1"));
        assert!(text.contains("# TYPE maras_request_latency_us histogram"));
        assert!(text.contains("maras_request_latency_us_bucket{endpoint=\"search\",le=\"250\"} 1"));
        assert!(text.contains("maras_request_latency_us_bucket{endpoint=\"search\",le=\"+Inf\"} 1"));
        assert!(text.contains("maras_request_latency_us_count{endpoint=\"search\"} 1"));
        assert!(text.contains("maras_cache_entries 3"));
        assert!(text.contains("maras_slow_requests_total 1"));
    }
}
