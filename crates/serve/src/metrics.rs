//! Lock-free server metrics: request counters, a fixed-bucket latency
//! histogram, and cache hit/miss counts.
//!
//! Everything is `AtomicU64` with relaxed ordering — the numbers are
//! monitoring data, not synchronization, so torn cross-counter reads
//! (e.g. a request counted but its latency not yet recorded) are
//! acceptable and each individual counter is still exact.

use serde_json::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket
/// is the +Inf overflow.
pub const LATENCY_BUCKETS_US: [u64; 10] =
    [50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 50_000, 250_000];

/// Endpoints the server distinguishes in its counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `GET /search`
    Search,
    /// `GET /autocomplete`
    Autocomplete,
    /// `GET /cluster/<rank>`
    Cluster,
    /// `POST /reload`
    Reload,
    /// Anything else (404s, bad methods, parse failures).
    Other,
}

const N_ENDPOINTS: usize = 7;

impl Endpoint {
    fn idx(self) -> usize {
        match self {
            Endpoint::Healthz => 0,
            Endpoint::Metrics => 1,
            Endpoint::Search => 2,
            Endpoint::Autocomplete => 3,
            Endpoint::Cluster => 4,
            Endpoint::Reload => 5,
            Endpoint::Other => 6,
        }
    }

    fn name(i: usize) -> &'static str {
        ["healthz", "metrics", "search", "autocomplete", "cluster", "reload", "other"][i]
    }
}

/// Shared server metrics; cheap to record from any worker thread.
#[derive(Default)]
pub struct Metrics {
    requests: [AtomicU64; N_ENDPOINTS],
    errors: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_total_us: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    reloads: AtomicU64,
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Records one served request with its wall latency.
    pub fn record(&self, endpoint: Endpoint, latency_us: u64, is_error: bool) {
        self.requests[endpoint.idx()].fetch_add(1, Ordering::Relaxed);
        if is_error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&ub| latency_us <= ub)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_total_us.fetch_add(latency_us, Ordering::Relaxed);
    }

    /// Records a response-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a response-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a completed snapshot reload.
    pub fn reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests across all endpoints.
    pub fn total_requests(&self) -> u64 {
        self.requests.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Renders the full counter set as JSON for `GET /metrics`.
    pub fn to_json(&self) -> Value {
        let requests =
            Value::obj((0..N_ENDPOINTS).map(|i| {
                (Endpoint::name(i), Value::from(self.requests[i].load(Ordering::Relaxed)))
            }));
        let histogram = Value::arr((0..self.latency.len()).map(|i| {
            let le = LATENCY_BUCKETS_US
                .get(i)
                .map_or_else(|| Value::from("+Inf"), |&ub| Value::from(ub));
            Value::obj([
                ("le_us", le),
                ("count", Value::from(self.latency[i].load(Ordering::Relaxed))),
            ])
        }));
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        Value::obj([
            ("requests", requests),
            ("errors", Value::from(self.errors.load(Ordering::Relaxed))),
            (
                "latency_us",
                Value::obj([
                    ("buckets", histogram),
                    ("total", Value::from(self.latency_total_us.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "cache",
                Value::obj([
                    ("hits", Value::from(hits)),
                    ("misses", Value::from(misses)),
                    (
                        "hit_rate",
                        if lookups == 0 {
                            Value::Null
                        } else {
                            Value::from(hits as f64 / lookups as f64)
                        },
                    ),
                ]),
            ),
            ("reloads", Value::from(self.reloads.load(Ordering::Relaxed))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render() {
        let m = Metrics::new();
        m.record(Endpoint::Search, 120, false);
        m.record(Endpoint::Search, 30, false);
        m.record(Endpoint::Other, 999_999, true);
        m.cache_hit();
        m.cache_miss();
        m.cache_miss();
        m.reload();
        assert_eq!(m.total_requests(), 3);
        let json = m.to_json();
        assert_eq!(json["requests"]["search"], 2u64);
        assert_eq!(json["requests"]["other"], 1u64);
        assert_eq!(json["errors"], 1u64);
        assert_eq!(json["reloads"], 1u64);
        assert_eq!(json["cache"]["hits"], 1u64);
        assert_eq!(json["cache"]["misses"], 2u64);
        let rate = json["cache"]["hit_rate"].as_f64().unwrap();
        assert!((rate - 1.0 / 3.0).abs() < 1e-12);
        // 30µs lands in the ≤50 bucket, 120µs in ≤250, overflow in +Inf.
        let buckets = json["latency_us"]["buckets"].as_array().unwrap();
        assert_eq!(buckets[0]["count"], 1u64);
        assert_eq!(buckets[2]["count"], 1u64);
        assert_eq!(buckets.last().unwrap()["count"], 1u64);
    }

    #[test]
    fn hit_rate_is_null_before_any_lookup() {
        let m = Metrics::new();
        assert!(m.to_json()["cache"]["hit_rate"].is_null());
    }
}
