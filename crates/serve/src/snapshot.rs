//! The immutable serving snapshot: a denormalized, indexed view of one
//! mined quarter.
//!
//! A [`Snapshot`] is built once from an [`AnalysisResult`] (plus the
//! vocabularies and an optional knowledge base) and is immutable
//! thereafter: the server shares it between worker threads as a plain
//! `Arc<Snapshot>` and hot-swaps whole snapshots instead of mutating one.
//! Every [`RuleQuery`] dispatches through inverted-index intersection
//! ([`Snapshot::query`]) instead of the legacy full scan, with results
//! guaranteed identical to [`RuleQuery::apply`] — the parity the
//! integration tests pin down.

use maras_core::link::{rule_max_severity, supporting_case_ids};
use maras_core::pipeline::AnalysisResult;
use maras_core::{KnowledgeBase, RuleQuery};
use maras_faers::Vocabulary;
use maras_signals::SignalScores;
use maras_tidset::TidSet;
use rustc_hash::FxHashMap;
use serde_json::Value;

/// Outcome severities span 0..=6 (`Outcome::severity`), so seven
/// at-least buckets cover every reachable threshold.
const N_SEVERITIES: usize = 7;

/// One contextual rule of a cluster, denormalized to names.
#[derive(Debug, Clone, PartialEq)]
pub struct ContextEntry {
    /// Canonical drug names of the contextual antecedent.
    pub drugs: Vec<String>,
    /// Canonical ADR terms (same consequent as the target).
    pub adrs: Vec<String>,
    /// Absolute support of the contextual rule.
    pub support: u64,
    /// Confidence of the contextual rule.
    pub confidence: f64,
    /// Lift of the contextual rule.
    pub lift: f64,
}

/// One ranked cluster, denormalized into exactly the fields the query
/// filters and the JSON API read — no itemset decoding at request time.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEntry {
    /// Canonical drug names (vocabulary case; uppercase in practice).
    pub drugs: Vec<String>,
    /// Canonical ADR terms.
    pub adrs: Vec<String>,
    /// Exclusiveness score.
    pub score: f64,
    /// Absolute support.
    pub support: u64,
    /// Confidence.
    pub confidence: f64,
    /// Lift.
    pub lift: f64,
    /// Highest outcome severity among supporting reports (0 if none).
    pub max_severity: u8,
    /// Whether the knowledge base documents this exact drug combination.
    pub known: bool,
    /// Whether at least one consequent ADR is absent from every
    /// constituent drug's label.
    pub has_novel_adr: bool,
    /// FAERS case ids of the supporting reports (drill-down).
    pub case_ids: Vec<u64>,
    /// Contextual rules, levels flattened in the cluster's level order.
    pub context: Vec<ContextEntry>,
    /// Full disproportionality score block from the signal engine.
    pub scores: SignalScores,
}

/// Presentation orders the snapshot maintains sorted rank indexes for
/// (the `?sort_by=` query parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortBy {
    /// Native rank order (the pipeline's ranking method; default).
    Rank,
    /// Descending PRR point estimate.
    Prr,
    /// Descending ROR point estimate.
    Ror,
    /// Descending EBGM posterior geometric mean.
    Ebgm,
}

impl SortBy {
    /// Parses the wire spelling; `None` for anything unrecognized.
    pub fn from_str_opt(s: &str) -> Option<SortBy> {
        match s {
            "rank" | "score" | "exclusiveness" => Some(SortBy::Rank),
            "prr" => Some(SortBy::Prr),
            "ror" => Some(SortBy::Ror),
            "ebgm" => Some(SortBy::Ebgm),
            _ => None,
        }
    }
}

/// An immutable, index-accelerated view of one quarter's ranked clusters.
#[derive(Debug)]
pub struct Snapshot {
    /// Which quarter this snapshot serves (e.g. `"2014 Q1"`).
    pub quarter: String,
    /// Reports that entered the analysis (cleaning input).
    pub n_reports: u64,
    /// Clusters in rank order (index = 0-based rank).
    pub clusters: Vec<ClusterEntry>,
    drug_vocab: Vocabulary,
    adr_vocab: Vocabulary,
    /// Uppercased drug name → compressed rank postings containing it.
    pub(crate) drug_index: FxHashMap<String, TidSet>,
    /// Canonical ADR term → compressed rank postings containing it.
    pub(crate) adr_index: FxHashMap<String, TidSet>,
    /// `severity_at_least[s]` — compressed ranks with `max_severity >= s`.
    pub(crate) severity_at_least: Vec<TidSet>,
    /// Antecedent cardinality → compressed rank postings.
    pub(crate) n_drugs_index: FxHashMap<usize, TidSet>,
    /// Ranks ordered by descending PRR estimate (ties: rank ascending).
    by_prr: Vec<u32>,
    /// Ranks ordered by descending ROR estimate (ties: rank ascending).
    by_ror: Vec<u32>,
    /// Ranks ordered by descending EBGM (ties: rank ascending).
    by_ebgm: Vec<u32>,
}

impl Snapshot {
    /// Builds a snapshot from a pipeline result. Pass the knowledge base
    /// the interactive scan path would use; with `None`, the
    /// `unknown_only` / `novel_adr_only` filters keep everything, exactly
    /// like `RuleQuery::apply` without a knowledge base.
    pub fn build(
        quarter: impl Into<String>,
        result: &AnalysisResult,
        drug_vocab: &Vocabulary,
        adr_vocab: &Vocabulary,
        kb: Option<&KnowledgeBase>,
    ) -> Snapshot {
        let _span = maras_obs::span("snapshot_build");
        let clusters = result
            .ranked
            .iter()
            .map(|r| {
                let t = &r.cluster.target;
                let drugs: Vec<String> = result
                    .encoded
                    .names(&t.drugs, drug_vocab, adr_vocab)
                    .into_iter()
                    .map(|n| n.to_ascii_uppercase())
                    .collect();
                let adrs = result.encoded.names(&t.adrs, drug_vocab, adr_vocab);
                let refs: Vec<&str> = drugs.iter().map(String::as_str).collect();
                let adr_refs: Vec<&str> = adrs.iter().map(String::as_str).collect();
                let context = r
                    .cluster
                    .context_rules()
                    .map(|c| ContextEntry {
                        drugs: result
                            .encoded
                            .names(&c.drugs, drug_vocab, adr_vocab)
                            .into_iter()
                            .map(|n| n.to_ascii_uppercase())
                            .collect(),
                        adrs: result.encoded.names(&c.adrs, drug_vocab, adr_vocab),
                        support: c.support(),
                        confidence: c.confidence(),
                        lift: c.lift(),
                    })
                    .collect();
                ClusterEntry {
                    score: r.score,
                    support: t.support(),
                    confidence: t.confidence(),
                    lift: t.lift(),
                    max_severity: rule_max_severity(result, t).map_or(0, |o| o.severity()),
                    known: kb.is_some_and(|kb| kb.is_known(&refs)),
                    has_novel_adr: kb.is_none_or(|kb| kb.has_novel_adr(&refs, &adr_refs)),
                    case_ids: supporting_case_ids(result, t),
                    context,
                    scores: r.scores,
                    drugs,
                    adrs,
                }
            })
            .collect();
        Snapshot::from_parts(
            quarter.into(),
            result.cleaning.input_reports as u64,
            drug_vocab.clone(),
            adr_vocab.clone(),
            clusters,
        )
    }

    /// Assembles a snapshot from already-denormalized parts, rebuilding
    /// every index. Used by `build` and by the store's load path, so
    /// in-memory and reloaded snapshots index identically.
    pub fn from_parts(
        quarter: String,
        n_reports: u64,
        drug_vocab: Vocabulary,
        adr_vocab: Vocabulary,
        clusters: Vec<ClusterEntry>,
    ) -> Snapshot {
        let mut drug_index: FxHashMap<String, TidSet> = FxHashMap::default();
        let mut adr_index: FxHashMap<String, TidSet> = FxHashMap::default();
        let mut severity_at_least: Vec<TidSet> = vec![TidSet::new(); N_SEVERITIES];
        let mut n_drugs_index: FxHashMap<usize, TidSet> = FxHashMap::default();
        for (rank, c) in clusters.iter().enumerate() {
            let rank = rank as u32;
            for d in &c.drugs {
                push_dedup(drug_index.entry(d.clone()).or_default(), rank);
            }
            for a in &c.adrs {
                push_dedup(adr_index.entry(a.clone()).or_default(), rank);
            }
            let top = (c.max_severity as usize).min(N_SEVERITIES - 1);
            for bucket in severity_at_least.iter_mut().take(top + 1) {
                bucket.push_ascending(rank);
            }
            n_drugs_index.entry(c.drugs.len()).or_default().push_ascending(rank);
        }
        Snapshot::assemble(
            quarter,
            n_reports,
            drug_vocab,
            adr_vocab,
            clusters,
            drug_index,
            adr_index,
            severity_at_least,
            n_drugs_index,
        )
    }

    /// Final assembly shared by the build path and the store's v3 load
    /// path (which decodes the posting indexes from disk instead of
    /// rebuilding them): derives the per-measure permutation indexes and
    /// records the container-mix metrics for the long-lived postings.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        quarter: String,
        n_reports: u64,
        drug_vocab: Vocabulary,
        adr_vocab: Vocabulary,
        clusters: Vec<ClusterEntry>,
        drug_index: FxHashMap<String, TidSet>,
        adr_index: FxHashMap<String, TidSet>,
        severity_at_least: Vec<TidSet>,
        n_drugs_index: FxHashMap<usize, TidSet>,
    ) -> Snapshot {
        for postings in drug_index
            .values()
            .chain(adr_index.values())
            .chain(severity_at_least.iter())
            .chain(n_drugs_index.values())
        {
            postings.record_build();
        }
        let by_prr = ranks_by_key_desc(&clusters, |c| c.scores.prr.estimate);
        let by_ror = ranks_by_key_desc(&clusters, |c| c.scores.ror.estimate);
        let by_ebgm = ranks_by_key_desc(&clusters, |c| c.scores.ebgm.ebgm);
        Snapshot {
            quarter,
            n_reports,
            clusters,
            drug_vocab,
            adr_vocab,
            drug_index,
            adr_index,
            severity_at_least,
            n_drugs_index,
            by_prr,
            by_ror,
            by_ebgm,
        }
    }

    /// The snapshot's drug vocabulary (canonicalization + autocomplete).
    pub fn drug_vocab(&self) -> &Vocabulary {
        &self.drug_vocab
    }

    /// The snapshot's ADR vocabulary.
    pub fn adr_vocab(&self) -> &Vocabulary {
        &self.adr_vocab
    }

    /// Number of clusters served.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the snapshot holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Applies a query through the inverted indexes, returning the same
    /// 0-based ranks (ascending) as `RuleQuery::apply` over the original
    /// `AnalysisResult`.
    ///
    /// Index intersection first narrows the candidate set (drug postings
    /// ∩ ADR postings ∩ severity bucket ∩ cardinality bucket), then the
    /// cheap denormalized predicates run over the few survivors, so the
    /// semantics stay byte-identical to the scan while the work scales
    /// with the answer instead of the corpus.
    pub fn query(&self, query: &RuleQuery) -> Vec<usize> {
        let q = query.resolved(&self.drug_vocab, &self.adr_vocab);
        let mut candidates: Option<TidSet> = None;
        for drug in &q.require_drugs {
            match self.drug_index.get(drug) {
                Some(postings) => narrow(&mut candidates, postings),
                None => return Vec::new(),
            }
        }
        if !q.any_adr.is_empty() {
            let mut union = TidSet::new();
            for adr in &q.any_adr {
                if let Some(postings) = self.adr_index.get(adr) {
                    union = union.union(postings);
                }
            }
            if union.is_empty() {
                return Vec::new();
            }
            narrow(&mut candidates, &union);
        }
        if let Some(min_sev) = q.min_severity {
            if min_sev as usize >= N_SEVERITIES {
                return Vec::new();
            }
            narrow(&mut candidates, &self.severity_at_least[min_sev as usize]);
        }
        if let Some(n) = q.n_drugs {
            match self.n_drugs_index.get(&n) {
                Some(postings) => narrow(&mut candidates, postings),
                None => return Vec::new(),
            }
        }
        // A NaN threshold rejects nothing in the scan predicate (`x < NaN`
        // is always false), so it must not narrow here either.
        if let Some(min) = q.min_prr.filter(|m| !m.is_nan()) {
            narrow(
                &mut candidates,
                &self.ranks_at_least(&self.by_prr, min, |c| c.scores.prr.estimate),
            );
        }
        if let Some(min) = q.min_ror.filter(|m| !m.is_nan()) {
            narrow(
                &mut candidates,
                &self.ranks_at_least(&self.by_ror, min, |c| c.scores.ror.estimate),
            );
        }
        let survivors: Box<dyn Iterator<Item = u32> + '_> = match &candidates {
            Some(ranks) => Box::new(ranks.iter()),
            None => Box::new(0..self.clusters.len() as u32),
        };
        survivors
            .filter(|&rank| self.matches(&q, &self.clusters[rank as usize]))
            .map(|rank| rank as usize)
            .collect()
    }

    /// Full predicate over one denormalized entry — the scan-path
    /// semantics restated over precomputed fields.
    fn matches(&self, q: &RuleQuery, c: &ClusterEntry) -> bool {
        if q.n_drugs.is_some_and(|n| c.drugs.len() != n) {
            return false;
        }
        if q.min_score.is_some_and(|min| c.score < min) {
            return false;
        }
        if !q.require_drugs.iter().all(|need| c.drugs.contains(need)) {
            return false;
        }
        if !q.any_adr.is_empty() && !q.any_adr.iter().any(|want| c.adrs.contains(want)) {
            return false;
        }
        if q.min_severity.is_some_and(|min| c.max_severity < min) {
            return false;
        }
        if q.unknown_only && c.known {
            return false;
        }
        if q.novel_adr_only && !c.has_novel_adr {
            return false;
        }
        if q.min_prr.is_some_and(|min| c.scores.prr.estimate < min) {
            return false;
        }
        if q.min_ror.is_some_and(|min| c.scores.ror.estimate < min) {
            return false;
        }
        true
    }

    /// The compressed set of ranks whose `key` is at least `min`: a
    /// prefix of the descending-sorted index, found by binary search.
    fn ranks_at_least(
        &self,
        index: &[u32],
        min: f64,
        key: impl Fn(&ClusterEntry) -> f64,
    ) -> TidSet {
        let end = index.partition_point(|&r| key(&self.clusters[r as usize]) >= min);
        let mut prefix = index[..end].to_vec();
        prefix.sort_unstable();
        TidSet::from_sorted(&prefix)
    }

    /// Reorders query-result ranks by a maintained sorted index. `Rank`
    /// keeps the native order; the others walk the per-measure index and
    /// keep only members of `hits`, so the relative order is descending
    /// in that measure with rank-ascending ties.
    pub fn sort_ranks(&self, hits: Vec<usize>, sort_by: SortBy) -> Vec<usize> {
        let index = match sort_by {
            SortBy::Rank => return hits,
            SortBy::Prr => &self.by_prr,
            SortBy::Ror => &self.by_ror,
            SortBy::Ebgm => &self.by_ebgm,
        };
        let mut member = vec![false; self.clusters.len()];
        for &h in &hits {
            member[h] = true;
        }
        index.iter().map(|&r| r as usize).filter(|&r| member[r]).collect()
    }

    /// Autocompletes a drug-name prefix: `(canonical term, clusters
    /// containing it)` in case-folded lexicographic order.
    pub fn complete_drug(&self, prefix: &str, limit: usize) -> Vec<(String, usize)> {
        self.complete(&self.drug_vocab, &self.drug_index, prefix, limit)
    }

    /// Autocompletes an ADR-term prefix.
    pub fn complete_adr(&self, prefix: &str, limit: usize) -> Vec<(String, usize)> {
        self.complete(&self.adr_vocab, &self.adr_index, prefix, limit)
    }

    fn complete(
        &self,
        vocab: &Vocabulary,
        index: &FxHashMap<String, TidSet>,
        prefix: &str,
        limit: usize,
    ) -> Vec<(String, usize)> {
        vocab
            .iter_prefix(prefix)
            .take(limit)
            .map(|(_, term)| {
                let uppercase = term.to_ascii_uppercase();
                let n = index
                    .get(term)
                    .or_else(|| index.get(&uppercase))
                    .map_or(0, |postings| postings.len() as usize);
                (term.to_string(), n)
            })
            .collect()
    }

    /// JSON view of one cluster for the search hit list (no context, no
    /// case ids — those are detail-only).
    ///
    /// # Panics
    /// Panics if `rank` is out of range; use [`Self::try_hit_json`] for
    /// ranks parsed from request paths.
    pub fn hit_json(&self, rank: usize) -> Value {
        self.try_hit_json(rank).expect("cluster rank out of range")
    }

    /// Checked variant of [`Self::hit_json`]: `None` when `rank` is out of
    /// range instead of panicking.
    pub fn try_hit_json(&self, rank: usize) -> Option<Value> {
        let c = self.clusters.get(rank)?;
        Some(Value::obj([
            ("rank", Value::from(rank + 1)),
            ("drugs", Value::from(c.drugs.clone())),
            ("adrs", Value::from(c.adrs.clone())),
            ("score", Value::from(c.score)),
            ("support", Value::from(c.support)),
            ("confidence", Value::from(c.confidence)),
            ("lift", Value::from(c.lift)),
            ("max_severity", Value::from(c.max_severity)),
            ("known", Value::from(c.known)),
            ("has_novel_adr", Value::from(c.has_novel_adr)),
            ("scores", scores_json(&c.scores)),
        ]))
    }

    /// JSON detail view of one cluster: the hit fields plus contextual
    /// rules and supporting case ids (the §4.1 drill-down).
    ///
    /// # Panics
    /// Panics if `rank` is out of range; use [`Self::try_detail_json`] for
    /// ranks parsed from request paths.
    pub fn detail_json(&self, rank: usize) -> Value {
        self.try_detail_json(rank).expect("cluster rank out of range")
    }

    /// Checked variant of [`Self::detail_json`]: `None` when `rank` is out
    /// of range instead of panicking.
    pub fn try_detail_json(&self, rank: usize) -> Option<Value> {
        let c = self.clusters.get(rank)?;
        let mut detail = match self.try_hit_json(rank)? {
            Value::Object(m) => m,
            _ => unreachable!("hit_json returns an object"),
        };
        detail.insert("case_ids".into(), Value::arr(c.case_ids.iter().map(|&id| id.into())));
        // Drill-down discovery: how many raw reports back this cluster and
        // where to page through them (served from the evidence archive).
        detail.insert("n_supporting_reports".into(), Value::from(c.case_ids.len()));
        detail.insert("reports_url".into(), Value::from(format!("/cluster/{}/reports", rank + 1)));
        detail.insert(
            "context".into(),
            Value::arr(c.context.iter().map(|ctx| {
                Value::obj([
                    ("drugs", Value::from(ctx.drugs.clone())),
                    ("adrs", Value::from(ctx.adrs.clone())),
                    ("support", Value::from(ctx.support)),
                    ("confidence", Value::from(ctx.confidence)),
                    ("lift", Value::from(ctx.lift)),
                ])
            })),
        );
        Some(Value::Object(detail))
    }
}

/// Ranks sorted by a score key, descending, ties broken by ascending
/// rank. Estimates are always finite (the engine never emits NaN), but
/// `total_cmp` keeps the build total regardless.
fn ranks_by_key_desc(clusters: &[ClusterEntry], key: impl Fn(&ClusterEntry) -> f64) -> Vec<u32> {
    let mut ranks: Vec<u32> = (0..clusters.len() as u32).collect();
    ranks.sort_by(|&x, &y| {
        key(&clusters[y as usize]).total_cmp(&key(&clusters[x as usize])).then_with(|| x.cmp(&y))
    });
    ranks
}

/// JSON view of a full score block — the same shape the CLI's `--json`
/// emits, so downstream consumers parse one schema.
pub fn scores_json(s: &SignalScores) -> Value {
    Value::obj([
        (
            "table",
            Value::obj([
                ("a", Value::from(s.table.a)),
                ("b", Value::from(s.table.b)),
                ("c", Value::from(s.table.c)),
                ("d", Value::from(s.table.d)),
            ]),
        ),
        ("rrr", Value::from(s.rrr)),
        (
            "prr",
            Value::obj([
                ("estimate", Value::from(s.prr.estimate)),
                ("lower", Value::from(s.prr.lower)),
                ("upper", Value::from(s.prr.upper)),
            ]),
        ),
        (
            "ror",
            Value::obj([
                ("estimate", Value::from(s.ror.estimate)),
                ("lower", Value::from(s.ror.lower)),
                ("upper", Value::from(s.ror.upper)),
            ]),
        ),
        ("chi2", Value::from(s.chi2)),
        ("evans", Value::from(s.evans)),
        (
            "ic",
            Value::obj([
                ("ic", Value::from(s.ic.ic)),
                ("ic025", Value::from(s.ic.ic025)),
                ("ic975", Value::from(s.ic.ic975)),
            ]),
        ),
        (
            "ebgm",
            Value::obj([
                ("ebgm", Value::from(s.ebgm.ebgm)),
                ("eb05", Value::from(s.ebgm.eb05)),
                ("eb95", Value::from(s.ebgm.eb95)),
                ("posterior_w1", Value::from(s.ebgm.posterior_w1)),
            ]),
        ),
        ("interaction", Value::from(s.interaction)),
        ("exclusiveness", Value::from(s.exclusiveness)),
    ])
}

/// Intersects the accumulator with a compressed posting set
/// (`None` = "all").
fn narrow(acc: &mut Option<TidSet>, postings: &TidSet) {
    *acc = Some(match acc.take() {
        None => postings.clone(),
        Some(cur) => cur.intersect(postings),
    });
}

/// Appends `rank` unless it is already the set's maximum — postings are
/// filled in ascending rank order, so a drug/ADR repeating inside one
/// cluster shows up as an adjacent duplicate.
fn push_dedup(postings: &mut TidSet, rank: u32) {
    if postings.last() != Some(rank) {
        postings.push_ascending(rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_core::{Pipeline, PipelineConfig};
    use maras_faers::{QuarterId, SynthConfig, Synthesizer};

    fn fixture() -> (AnalysisResult, Vocabulary, Vocabulary) {
        let mut cfg = SynthConfig::test_scale(23);
        cfg.n_reports = 1200;
        let mut synth = Synthesizer::new(cfg);
        let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
        let dv = synth.drug_vocab().clone();
        let av = synth.adr_vocab().clone();
        let result = Pipeline::new(PipelineConfig::default()).run(quarter, &dv, &av);
        (result, dv, av)
    }

    #[test]
    fn empty_query_returns_every_rank_in_order() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        assert_eq!(snap.len(), result.ranked.len());
        let hits = snap.query(&RuleQuery::new());
        assert_eq!(hits, (0..snap.len()).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_query_matches_scan_on_basic_filters() {
        let (result, dv, av) = fixture();
        let kb = KnowledgeBase::literature_validated();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, Some(&kb));
        let top = &snap.clusters[0];
        let queries = [
            RuleQuery::new().with_drug(&top.drugs[0]),
            RuleQuery::new().with_any_adr(&top.adrs[0]),
            RuleQuery::new().with_min_severity(4),
            RuleQuery::new().with_n_drugs(2),
            RuleQuery::new().with_min_score(snap.clusters[snap.len() / 2].score),
            RuleQuery::new().unknown_only(),
            RuleQuery::new().novel_adr_only(),
            RuleQuery::new().with_drug(&top.drugs[0]).with_min_severity(3).with_n_drugs(2),
            RuleQuery::new().with_min_prr(snap.clusters[snap.len() / 2].scores.prr.estimate),
            RuleQuery::new().with_min_ror(1.0),
            RuleQuery::new().with_min_prr(2.0).with_min_ror(2.0).with_n_drugs(2),
            RuleQuery::new().with_min_prr(f64::INFINITY),
        ];
        for q in queries {
            let scan = q.apply(&result, &dv, &av, Some(&kb));
            let indexed = snap.query(&q);
            assert_eq!(scan, indexed, "query {q:?}");
        }
    }

    #[test]
    fn unknown_drug_and_adr_return_nothing() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        assert!(snap.query(&RuleQuery::new().with_drug("QQQQQQQQQQ")).is_empty());
        assert!(snap.query(&RuleQuery::new().with_any_adr("QQQQQQQQQQ")).is_empty());
        assert!(snap.query(&RuleQuery::new().with_min_severity(200)).is_empty());
        assert!(snap.query(&RuleQuery::new().with_n_drugs(17)).is_empty());
    }

    #[test]
    fn autocomplete_orders_and_counts() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        let hits = snap.complete_drug("PR", 50);
        assert!(hits.iter().any(|(t, _)| t == "PROGRAF"));
        for (term, n) in &hits {
            let expect =
                snap.clusters.iter().filter(|c| c.drugs.contains(&term.to_ascii_uppercase()));
            assert_eq!(*n, expect.count(), "{term}");
        }
        assert!(snap.complete_drug("PR", 2).len() <= 2);
        let adrs = snap.complete_adr("a", 1000);
        assert!(!adrs.is_empty());
    }

    #[test]
    fn detail_json_carries_context_and_cases() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        let detail = snap.detail_json(0);
        assert_eq!(detail["rank"], 1usize);
        let n_drugs = detail["drugs"].as_array().unwrap().len();
        let context = detail["context"].as_array().unwrap();
        assert_eq!(context.len(), (1 << n_drugs) - 2, "complete MCAC context");
        assert_eq!(
            detail["case_ids"].as_array().unwrap().len() as u64,
            detail["support"].as_u64().unwrap()
        );
        // Drill-down discovery fields: count matches case_ids, and the
        // link names the paginated reports route for this 1-based rank.
        assert_eq!(
            detail["n_supporting_reports"].as_u64().unwrap(),
            detail["support"].as_u64().unwrap()
        );
        assert_eq!(detail["reports_url"], "/cluster/1/reports");
    }

    #[test]
    fn sorted_indexes_order_by_their_measure() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        let all = snap.query(&RuleQuery::new());
        for (sort_by, key) in [
            (SortBy::Prr, (|c: &ClusterEntry| c.scores.prr.estimate) as fn(&ClusterEntry) -> f64),
            (SortBy::Ror, |c: &ClusterEntry| c.scores.ror.estimate),
            (SortBy::Ebgm, |c: &ClusterEntry| c.scores.ebgm.ebgm),
        ] {
            let sorted = snap.sort_ranks(all.clone(), sort_by);
            // Same set of ranks, reordered.
            let mut back = sorted.clone();
            back.sort_unstable();
            assert_eq!(back, all, "{sort_by:?}");
            for w in sorted.windows(2) {
                let (x, y) = (key(&snap.clusters[w[0]]), key(&snap.clusters[w[1]]));
                assert!(
                    x > y || (x == y && w[0] < w[1]),
                    "{sort_by:?}: rank {} ({x}) before rank {} ({y})",
                    w[0],
                    w[1]
                );
            }
        }
        // Rank keeps native order, and sorting a filtered subset preserves
        // membership.
        assert_eq!(snap.sort_ranks(all.clone(), SortBy::Rank), all);
        let subset = snap.query(&RuleQuery::new().with_min_ror(1.0));
        let mut sorted_subset = snap.sort_ranks(subset.clone(), SortBy::Ror);
        sorted_subset.sort_unstable();
        assert_eq!(sorted_subset, subset);
    }

    #[test]
    fn sort_by_parses_wire_spellings() {
        assert_eq!(SortBy::from_str_opt("prr"), Some(SortBy::Prr));
        assert_eq!(SortBy::from_str_opt("ror"), Some(SortBy::Ror));
        assert_eq!(SortBy::from_str_opt("ebgm"), Some(SortBy::Ebgm));
        assert_eq!(SortBy::from_str_opt("rank"), Some(SortBy::Rank));
        assert_eq!(SortBy::from_str_opt("score"), Some(SortBy::Rank));
        assert_eq!(SortBy::from_str_opt("exclusiveness"), Some(SortBy::Rank));
        assert_eq!(SortBy::from_str_opt("PRR"), None);
        assert_eq!(SortBy::from_str_opt("bogus"), None);
    }

    #[test]
    fn hit_json_carries_score_block() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        let hit = snap.hit_json(0);
        let scores = &hit["scores"];
        let c = &snap.clusters[0];
        assert_eq!(scores["table"]["a"].as_u64().unwrap(), c.scores.table.a);
        assert_eq!(scores["prr"]["estimate"].as_f64().unwrap(), c.scores.prr.estimate);
        assert_eq!(scores["ror"]["upper"].as_f64().unwrap(), c.scores.ror.upper);
        assert_eq!(scores["ic"]["ic025"].as_f64().unwrap(), c.scores.ic.ic025);
        assert_eq!(scores["ebgm"]["eb05"].as_f64().unwrap(), c.scores.ebgm.eb05);
        assert_eq!(scores["exclusiveness"].as_f64().unwrap(), c.score);
        assert!(scores["interaction"].as_f64().is_some());
        // The detail view inherits the block from the hit view.
        assert_eq!(snap.detail_json(0)["scores"].to_string(), scores.to_string());
    }

    #[test]
    fn try_json_views_check_bounds() {
        let (result, dv, av) = fixture();
        let snap = Snapshot::build("2014 Q1", &result, &dv, &av, None);
        assert!(snap.try_hit_json(0).is_some());
        assert!(snap.try_detail_json(0).is_some());
        assert!(snap.try_hit_json(snap.len()).is_none());
        assert!(snap.try_detail_json(snap.len()).is_none());
        assert!(snap.try_detail_json(usize::MAX).is_none());
        assert_eq!(snap.try_detail_json(0).unwrap().to_string(), snap.detail_json(0).to_string());
    }
}
