//! A sharded LRU cache for rendered query responses.
//!
//! Keys are canonical request strings (path + normalized query string),
//! values are the rendered JSON bodies. Sharding by key hash keeps lock
//! contention low under the thread-pool server; within a shard, a
//! monotonic tick stamps each hit and the stalest entry is evicted when
//! the shard overflows. Recency is an approximation (per-shard, O(shard)
//! eviction scan), which is exactly enough for a response cache — the
//! contract that matters is correctness: the server clears the cache on
//! every snapshot swap, so a cached body never outlives the snapshot
//! that rendered it.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

const N_SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    entries: HashMap<String, (u64, String)>,
    tick: u64,
}

/// Sharded, capacity-bounded response cache.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl QueryCache {
    /// Creates a cache holding roughly `capacity` responses total.
    /// A zero capacity disables caching (every lookup misses).
    pub fn new(capacity: usize) -> QueryCache {
        QueryCache {
            shards: (0..N_SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: capacity.div_ceil(N_SHARDS),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % N_SHARDS]
    }

    /// Looks up a rendered response, refreshing its recency on hit.
    pub fn get(&self, key: &str) -> Option<String> {
        if self.per_shard_capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let (stamp, body) = shard.entries.get_mut(key)?;
        *stamp = tick;
        Some(body.clone())
    }

    /// Inserts a rendered response, evicting the stalest entry in the
    /// shard if it is full.
    pub fn put(&self, key: String, body: String) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if shard.entries.len() >= self.per_shard_capacity && !shard.entries.contains_key(&key) {
            if let Some(stalest) =
                shard.entries.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                shard.entries.remove(&stalest);
            }
        }
        shard.entries.insert(key, (tick, body));
    }

    /// Drops every cached response (called on snapshot swap).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap().entries.clear();
        }
    }

    /// Number of cached responses across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().entries.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_put_miss_after_clear() {
        let cache = QueryCache::new(64);
        assert_eq!(cache.get("/search?drug=X"), None);
        cache.put("/search?drug=X".into(), "{}".into());
        assert_eq!(cache.get("/search?drug=X").as_deref(), Some("{}"));
        cache.clear();
        assert_eq!(cache.get("/search?drug=X"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_prefers_stale_entries() {
        // One-entry shards: every insert into an occupied shard evicts.
        let cache = QueryCache::new(N_SHARDS);
        for i in 0..100 {
            cache.put(format!("key-{i}"), format!("body-{i}"));
        }
        assert!(cache.len() <= N_SHARDS);
        // The most recent insert in its shard must have survived.
        assert_eq!(cache.get("key-99").as_deref(), Some("body-99"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = QueryCache::new(0);
        cache.put("k".into(), "v".into());
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn recency_refresh_on_get_protects_hot_keys() {
        let cache = QueryCache::new(N_SHARDS * 2);
        // Two keys per shard max; touch "hot" repeatedly while streaming
        // cold keys through — hot must survive in its shard.
        cache.put("hot".into(), "H".into());
        for i in 0..200 {
            assert_eq!(cache.get("hot").as_deref(), Some("H"), "iteration {i}");
            cache.put(format!("cold-{i}"), "C".into());
        }
    }
}
