//! A deliberately small HTTP/1.1 subset — just enough protocol for a
//! localhost JSON API with zero dependencies.
//!
//! Supported: request-line + header parsing, `Content-Length` bodies,
//! percent-decoded query strings, and `Connection: close` responses.
//! Not supported (and rejected cleanly rather than mis-parsed): chunked
//! transfer encoding, pipelining, keep-alive, upgrades.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Hard cap on header section + body size; a localhost API never needs
/// more and the cap keeps a malformed client from ballooning memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, decoded path, decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, e.g. `/cluster/3`.
    pub path: String,
    /// Percent-decoded query parameters in arrival order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable query parameter.
    pub fn params<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.query.iter().filter(move |(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Canonical cache key: path plus the query pairs re-encoded in
    /// sorted order, so `?a=1&b=2` and `?b=2&a=1` share one cache slot.
    pub fn cache_key(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.query.iter().collect();
        pairs.sort();
        let mut key = self.path.clone();
        for (k, v) in pairs {
            key.push('\u{1f}');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed request line / headers / body framing.
    Malformed(&'static str),
    /// Request exceeded the header or body cap.
    TooLarge,
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Reads and parses one request from the stream.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(ParseError::Malformed("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed("missing method"))?.to_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing target"))?;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or(ParseError::Malformed("bad path encoding"))?;
    let query = match raw_query {
        Some(q) => parse_query(q).ok_or(ParseError::Malformed("bad query encoding"))?,
        None => Vec::new(),
    };

    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        header_bytes += header.len();
        if header_bytes > MAX_HEADER_BYTES {
            return Err(ParseError::TooLarge);
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    // The API carries request data in the URL; bodies are drained so the
    // peer can finish writing, then discarded.
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
    }
    Ok(Request { method, path, query })
}

/// Writes a response with the given content type and closes the
/// connection semantics.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// Decodes `%XX` escapes and `+`-as-space; `None` on malformed escapes
/// or non-UTF-8 results.
pub fn percent_decode(raw: &str) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("Acute+renal%20failure").as_deref(), Some("Acute renal failure"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("bad%2"), None);
        assert_eq!(percent_decode("bad%zz"), None);
    }

    #[test]
    fn query_parsing_keeps_order_and_repeats() {
        let q = parse_query("drug=WARFARIN&adr=Pain&adr=Nausea&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("drug".into(), "WARFARIN".into()),
                ("adr".into(), "Pain".into()),
                ("adr".into(), "Nausea".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a = Request {
            method: "GET".into(),
            path: "/search".into(),
            query: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        };
        let mut b = a.clone();
        b.query.reverse();
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Request { query: vec![("a".into(), "2".into())], ..a.clone() };
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
