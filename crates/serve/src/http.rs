//! A deliberately small HTTP/1.1 subset — just enough protocol for a
//! localhost JSON API with zero dependencies.
//!
//! Supported: request-line + header parsing, `Content-Length` bodies,
//! percent-decoded query strings, and `Connection: close` responses.
//! Not supported (and rejected cleanly rather than mis-parsed): chunked
//! transfer encoding, pipelining, keep-alive, upgrades.
//!
//! Hostile clients are bounded on two axes: every line read goes through
//! a [`Read::take`]-capped reader so a newline-free flood fails with
//! [`ParseError::TooLarge`] before buffering more than the header cap,
//! and [`read_request`] enforces one absolute deadline over the whole
//! request so a byte-at-a-time slowloris releases the worker after the
//! configured I/O timeout ([`ParseError::Timeout`]).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on header section + body size; a localhost API never needs
/// more and the cap keeps a malformed client from ballooning memory.
const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed request: method, decoded path, decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Percent-decoded path, e.g. `/cluster/3`.
    pub path: String,
    /// Percent-decoded query parameters in arrival order.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of a query parameter, if present.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable query parameter.
    pub fn params<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.query.iter().filter(move |(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Canonical cache key: path plus the query pairs re-encoded in
    /// sorted order, so `?a=1&b=2` and `?b=2&a=1` share one cache slot.
    pub fn cache_key(&self) -> String {
        let mut pairs: Vec<&(String, String)> = self.query.iter().collect();
        pairs.sort();
        let mut key = self.path.clone();
        for (k, v) in pairs {
            key.push('\u{1f}');
            key.push_str(k);
            key.push('=');
            key.push_str(v);
        }
        key
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// Malformed request line / headers / body framing.
    Malformed(&'static str),
    /// Request exceeded the header or body cap.
    TooLarge,
    /// The client did not deliver a full request within the I/O deadline
    /// (per-read socket timeout or the whole-request parse deadline).
    Timeout,
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        if matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock) {
            ParseError::Timeout
        } else {
            ParseError::Io(e)
        }
    }
}

/// A `TcpStream` reader that enforces one absolute deadline across the
/// whole request: before every read the remaining budget becomes the
/// socket read timeout, so a byte-at-a-time slowloris sender cannot
/// stretch total parse time beyond the deadline — each individual read
/// succeeds, but the budget keeps shrinking until it hits zero.
struct DeadlineStream<'a> {
    stream: &'a TcpStream,
    deadline: Option<Instant>,
}

impl Read for DeadlineStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(deadline) = self.deadline {
            let now = Instant::now();
            if now >= deadline {
                return Err(std::io::ErrorKind::TimedOut.into());
            }
            let _ = self.stream.set_read_timeout(Some(deadline - now));
        }
        let mut stream = self.stream;
        stream.read(buf)
    }
}

/// Reads and parses one request from the stream. `io_timeout` bounds the
/// *total* wall time spent reading the request, not just each read.
pub fn read_request(
    stream: &mut TcpStream,
    io_timeout: Option<Duration>,
) -> Result<Request, ParseError> {
    let mut discard = None;
    read_request_capturing(stream, io_timeout, &mut discard)
}

/// [`read_request`], additionally capturing whatever request line the
/// peer managed to send into `line_out` — *before* any parse error
/// propagates. A slowloris connection cut off by the deadline mid-header
/// still yields its (possibly partial) request line, so the shed/timeout
/// log event can name what the client was asking for.
pub fn read_request_capturing(
    stream: &mut TcpStream,
    io_timeout: Option<Duration>,
    line_out: &mut Option<String>,
) -> Result<Request, ParseError> {
    let deadline = io_timeout.map(|t| Instant::now() + t);
    let reader = BufReader::new(DeadlineStream { stream: &*stream, deadline });
    parse_request_capturing(reader, line_out)
}

/// Reads one line, buffering at most `budget + 1` bytes: a newline-free
/// flood fails with `TooLarge` instead of ballooning memory while
/// waiting for a `\n` that never comes.
fn read_line_bounded<R: BufRead>(
    reader: &mut R,
    line: &mut String,
    budget: usize,
) -> Result<(), ParseError> {
    let n = reader.by_ref().take(budget as u64 + 1).read_line(line)?;
    if n > budget {
        return Err(ParseError::TooLarge);
    }
    Ok(())
}

/// Longest request-line prefix worth keeping for attribution; log lines
/// should not balloon just because a flood did.
const CAPTURED_LINE_MAX: usize = 256;

/// The transport-independent parse: request line, headers, body drain.
/// Every read is bounded by the remaining header budget, so memory use
/// is capped at `MAX_HEADER_BYTES` no matter what the peer streams.
///
/// Whatever (possibly partial) first line the peer delivered is recorded
/// in `line_out` before any error propagates. `BufRead::read_line` keeps
/// valid-UTF-8 bytes read before an I/O error, so a deadline-killed
/// slowloris still leaves its half-sent request line here for the
/// timeout log event.
fn parse_request_capturing<R: BufRead>(
    mut reader: R,
    line_out: &mut Option<String>,
) -> Result<Request, ParseError> {
    let mut line = String::new();
    let mut budget = MAX_HEADER_BYTES;
    let first = read_line_bounded(&mut reader, &mut line, budget);
    let trimmed = line.trim_end();
    if !trimmed.is_empty() {
        let keep =
            trimmed.char_indices().nth(CAPTURED_LINE_MAX).map_or(trimmed, |(i, _)| &trimmed[..i]);
        *line_out = Some(keep.to_string());
    }
    first?;
    if line.is_empty() {
        return Err(ParseError::Malformed("empty request"));
    }
    budget -= line.len();
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(ParseError::Malformed("missing method"))?.to_uppercase();
    let target = parts.next().ok_or(ParseError::Malformed("missing target"))?;
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path).ok_or(ParseError::Malformed("bad path encoding"))?;
    let query = match raw_query {
        Some(q) => parse_query(q).ok_or(ParseError::Malformed("bad query encoding"))?,
        None => Vec::new(),
    };

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        read_line_bounded(&mut reader, &mut header, budget)?;
        budget -= header.len();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    // The API carries request data in the URL; bodies are drained so the
    // peer can finish writing, then discarded.
    if content_length > 0 {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
    }
    Ok(Request { method, path, query })
}

/// Writes a response with the given content type and closes the
/// connection semantics.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_with(stream, status, content_type, &[], body)
}

/// [`write_response`] plus caller-supplied extra headers (the server
/// uses this to echo `x-maras-request-id` on every response path).
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn parse_query(raw: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// Decodes `%XX` escapes and `+`-as-space; `None` on malformed escapes
/// or non-UTF-8 results.
pub fn percent_decode(raw: &str) -> Option<String> {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &[u8]) -> Result<Request, ParseError> {
        parse_request_capturing(raw, &mut None)
    }

    #[test]
    fn parses_a_plain_request() {
        let req = parse(b"GET /search?drug=WARFARIN HTTP/1.1\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/search");
        assert_eq!(req.query, vec![("drug".to_string(), "WARFARIN".to_string())]);
    }

    #[test]
    fn newline_free_request_line_is_too_large_not_unbounded() {
        // 1 MiB without a single '\n': the bounded reader must bail at
        // the header cap instead of buffering the whole flood.
        let flood = vec![b'A'; 1024 * 1024];
        assert!(matches!(parse(&flood), Err(ParseError::TooLarge)));
    }

    #[test]
    fn newline_free_header_line_is_too_large() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(std::iter::repeat_n(b'h', 64 * 1024));
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn header_section_over_cap_is_too_large() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..2048 {
            raw.extend(format!("x-filler-{i}: {}\r\n", "v".repeat(64)).into_bytes());
        }
        raw.extend(b"\r\n");
        assert!(matches!(parse(&raw), Err(ParseError::TooLarge)));
    }

    #[test]
    fn declared_body_over_cap_is_too_large() {
        let raw = format!("POST /reload HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 2 * 1024 * 1024);
        assert!(matches!(parse(raw.as_bytes()), Err(ParseError::TooLarge)));
    }

    #[test]
    fn timeout_kinds_map_to_parse_timeout() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            assert!(matches!(ParseError::from(std::io::Error::from(kind)), ParseError::Timeout));
        }
        assert!(matches!(
            ParseError::from(std::io::Error::from(std::io::ErrorKind::UnexpectedEof)),
            ParseError::Io(_)
        ));
    }

    /// Serves `data`, then fails every further read with `TimedOut` —
    /// the shape of a slowloris peer hitting the request deadline.
    struct TimesOutAfter<'a>(&'a [u8]);

    impl Read for TimesOutAfter<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Err(std::io::ErrorKind::TimedOut.into());
            }
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    fn parse_timing_out(data: &[u8], cap: &mut Option<String>) -> Result<Request, ParseError> {
        parse_request_capturing(BufReader::new(TimesOutAfter(data)), cap)
    }

    #[test]
    fn request_line_is_captured_before_errors_propagate() {
        // Complete request: captured line matches what was sent.
        let mut cap = None;
        let req =
            parse_request_capturing(&b"GET /search?drug=X HTTP/1.1\r\n\r\n"[..], &mut cap).unwrap();
        assert_eq!(req.path, "/search");
        assert_eq!(cap.as_deref(), Some("GET /search?drug=X HTTP/1.1"));

        // A peer timed out mid-headers still leaves an attributable
        // request line even though parsing fails.
        let mut cap = None;
        let res = parse_timing_out(b"GET /cluster/3 HTTP/1.1\r\nhost", &mut cap);
        assert!(matches!(res, Err(ParseError::Timeout)));
        assert_eq!(cap.as_deref(), Some("GET /cluster/3 HTTP/1.1"));

        // A peer timed out mid-request-line: the partial line is kept.
        let mut cap = None;
        let res = parse_timing_out(b"GET /slow-and-unfin", &mut cap);
        assert!(matches!(res, Err(ParseError::Timeout)));
        assert_eq!(cap.as_deref(), Some("GET /slow-and-unfin"));

        // Nothing sent at all: no phantom capture.
        let mut cap = None;
        assert!(parse_timing_out(b"", &mut cap).is_err());
        assert_eq!(cap, None);

        // A newline-free flood is captured truncated, not wholesale.
        let mut cap = None;
        let flood = vec![b'A'; 64 * 1024];
        assert!(matches!(parse_request_capturing(&flood[..], &mut cap), Err(ParseError::TooLarge)));
        let kept = cap.expect("flood line captured");
        assert_eq!(kept.len(), CAPTURED_LINE_MAX);
        assert!(kept.bytes().all(|b| b == b'A'));
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("Acute+renal%20failure").as_deref(), Some("Acute renal failure"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert_eq!(percent_decode("bad%2"), None);
        assert_eq!(percent_decode("bad%zz"), None);
    }

    #[test]
    fn query_parsing_keeps_order_and_repeats() {
        let q = parse_query("drug=WARFARIN&adr=Pain&adr=Nausea&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("drug".into(), "WARFARIN".into()),
                ("adr".into(), "Pain".into()),
                ("adr".into(), "Nausea".into()),
                ("flag".into(), String::new()),
            ]
        );
    }

    #[test]
    fn cache_key_is_order_insensitive() {
        let a = Request {
            method: "GET".into(),
            path: "/search".into(),
            query: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        };
        let mut b = a.clone();
        b.query.reverse();
        assert_eq!(a.cache_key(), b.cache_key());
        let c = Request { query: vec![("a".into(), "2".into())], ..a.clone() };
        assert_ne!(a.cache_key(), c.cache_key());
    }
}
