//! The std-only concurrent HTTP server, built for hostile conditions.
//!
//! A `TcpListener` accept loop feeds connections to a fixed pool of
//! worker threads over a **bounded** `sync_channel` — the admission
//! queue. When the queue is full the accept side answers 503
//! `{"error":{"code":"overloaded"}}` immediately instead of queueing
//! forever (`maras_serve_shed_total`), so a flood degrades into fast
//! rejections rather than unbounded memory and latency. Every accepted
//! socket gets read/write deadlines ([`ServeConfig::io_timeout`]) so a
//! slowloris client or dead peer releases its worker
//! (`maras_serve_timeouts_total`), and every handler runs under
//! `catch_unwind`: a panicking route costs one 500 response, not a
//! worker (`maras_serve_worker_panics_total`, with
//! `maras_serve_workers_alive` as the liveness gauge).
//!
//! Every response carries `Connection: close` — one request per
//! connection keeps the protocol handling trivial and is fine for a
//! localhost analytics API. Shutdown is a graceful drain:
//! [`ServerHandle::shutdown`] flips `/healthz` to 503
//! `{"status":"draining"}` (load-balancer deregistration), sheds new
//! connections at the accept side, finishes in-flight and queued
//! requests up to [`ServeConfig::drain`], then sheds whatever is left
//! with 503 and joins every thread.

use crate::debug::{self, RequestId, RequestRecord, REQUEST_ID_HEADER};
use crate::http::{self, ParseError};
use crate::metrics::Endpoint;
use crate::router::{self, ServeState};
use maras_obs::{Event, Level};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Runtime knobs for [`serve_with`]. The defaults suit an interactive
/// localhost deployment; tests tighten them to provoke failure paths.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling requests (min 1).
    pub n_threads: usize,
    /// Admission-queue capacity (min 1): connections waiting for a
    /// worker beyond this are shed with 503 from the accept side.
    pub queue_depth: usize,
    /// Read/write deadline per connection; also bounds the *total* time
    /// a worker spends parsing one request. `None` disables deadlines
    /// (trusted peers only — a stalled client then holds its worker).
    pub io_timeout: Option<Duration>,
    /// How long [`ServerHandle::shutdown`] waits for in-flight and
    /// queued requests before shedding the remainder.
    pub drain: Duration,
    /// Whether `GET /debug/*` (logs, recent requests, runtime dump) is
    /// routable. On by default; disabled, the paths 404 as if they
    /// never existed.
    pub debug_endpoints: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            n_threads: 4,
            queue_depth: 128,
            io_timeout: Some(Duration::from_millis(5_000)),
            drain: Duration::from_millis(5_000),
            debug_endpoints: true,
        }
    }
}

/// A connection that passed admission control, carrying the correlation
/// id it was assigned at accept time — before it ever touched a worker.
struct Admitted {
    stream: TcpStream,
    id: RequestId,
}

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    /// Once set, workers answer every still-queued connection with 503
    /// instead of handling it — the post-drain-deadline shed.
    shed_remaining: Arc<AtomicBool>,
    drain_limit: Duration,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection (tests, CLI).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Gracefully drains and stops the server: flips `/healthz` to
    /// draining, sheds new connections, waits up to the configured
    /// drain window for in-flight + queued requests, sheds the rest
    /// with 503, then joins every thread.
    pub fn shutdown(self) {
        let limit = self.drain_limit;
        self.drain_for(limit);
    }

    /// [`ServerHandle::shutdown`] with an explicit drain window.
    pub fn drain_for(mut self, limit: Duration) {
        self.state.begin_drain();
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            let m = &self.state.metrics;
            if m.queue_used() == 0 && m.in_flight() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Past the window: whatever is still queued gets a fast 503.
        self.shed_remaining.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept(); an error just means the listener already died.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: a dropped-without-shutdown handle still stops the
        // accept loop; threads are detached rather than joined.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `state`
/// on `n_threads` workers with default robustness settings. See
/// [`serve_with`] to tune queue depth, I/O deadlines, and drain window.
pub fn serve(
    state: Arc<ServeState>,
    addr: &str,
    n_threads: usize,
) -> std::io::Result<ServerHandle> {
    serve_with(state, addr, ServeConfig { n_threads, ..ServeConfig::default() })
}

/// Binds `addr` and serves `state` under the given [`ServeConfig`]
/// until [`ServerHandle::shutdown`].
pub fn serve_with(
    state: Arc<ServeState>,
    addr: &str,
    config: ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    state.set_debug_endpoints(config.debug_endpoints);
    let stop = Arc::new(AtomicBool::new(false));
    let shed_remaining = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<Admitted>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let n_threads = config.n_threads.max(1);
    let io_timeout = config.io_timeout;
    let mut workers = Vec::with_capacity(n_threads);
    for i in 0..n_threads {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        let shed_remaining = Arc::clone(&shed_remaining);
        workers.push(
            std::thread::Builder::new()
                .name(format!("maras-serve-{i}"))
                .spawn(move || worker_loop(&state, &rx, &shed_remaining, io_timeout))
                .expect("spawn worker thread"),
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_state = Arc::clone(&state);
    let accept_thread = std::thread::Builder::new()
        .name("maras-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = conn else { continue };
                // Correlation starts here: the id exists before the
                // connection touches the queue, so even a shed that
                // never reaches a worker is attributable.
                let id = RequestId::next();
                // Socket deadlines before the connection touches any
                // worker: a dead peer can stall neither side for long.
                let _ = stream.set_read_timeout(io_timeout);
                let _ = stream.set_write_timeout(io_timeout);
                if accept_state.is_draining() {
                    accept_state.metrics.shed();
                    shed_503(
                        &accept_state,
                        &mut stream,
                        id,
                        "draining",
                        "server is draining; not admitting work",
                    );
                    continue;
                }
                accept_state.metrics.enqueued();
                match tx.try_send(Admitted { stream, id }) {
                    Ok(()) => {}
                    // Admission control: full queue means the reply is an
                    // immediate 503 from here, not an unbounded wait.
                    Err(TrySendError::Full(Admitted { mut stream, id })) => {
                        accept_state.metrics.dequeued();
                        accept_state.metrics.shed();
                        shed_503(
                            &accept_state,
                            &mut stream,
                            id,
                            "overloaded",
                            "request queue is full; load shed",
                        );
                    }
                    // Every worker exited; stop accepting.
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            // tx drops here, which unblocks and terminates the workers.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle {
        addr,
        state,
        stop,
        shed_remaining,
        drain_limit: config.drain,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// Decrements the worker-liveness gauge however the worker exits —
/// clean channel close or a panic that escapes everything else.
struct WorkerLiveness<'a>(&'a ServeState);

impl Drop for WorkerLiveness<'_> {
    fn drop(&mut self) {
        self.0.metrics.worker_exited();
    }
}

/// What a worker knows about the request it is handling, kept *outside*
/// the `catch_unwind` boundary so the panic path can still attribute
/// the failure: which request (id), what it asked for (line), and when
/// handling started.
struct RequestCtx {
    id: RequestId,
    started: Instant,
    line: Option<String>,
    parse_us: u64,
    route_us: u64,
}

/// One worker: pull connections off the bounded queue until it closes,
/// surviving handler panics and a poisoned receiver mutex.
fn worker_loop(
    state: &Arc<ServeState>,
    rx: &Mutex<mpsc::Receiver<Admitted>>,
    shed_remaining: &AtomicBool,
    io_timeout: Option<Duration>,
) {
    state.metrics.worker_started();
    let _liveness = WorkerLiveness(state);
    loop {
        // Holding the receiver lock only for the recv keeps the other
        // workers free to pick up the next socket. A peer that panicked
        // while holding the lock must not cascade into killing this
        // worker too: recover the guard instead of unwrapping the poison.
        let conn = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
        match conn {
            Ok(Admitted { mut stream, id }) => {
                state.metrics.dequeued();
                if shed_remaining.load(Ordering::SeqCst) {
                    // Drain deadline passed: flush the queue with 503s.
                    state.metrics.shed();
                    shed_503(
                        state,
                        &mut stream,
                        id,
                        "draining",
                        "drain deadline exceeded; request shed",
                    );
                    continue;
                }
                state.metrics.request_started();
                debug::set_current_request(Some(id));
                let mut ctx = RequestCtx {
                    id,
                    started: Instant::now(),
                    line: None,
                    parse_us: 0,
                    route_us: 0,
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(state, &mut stream, io_timeout, &mut ctx)
                }));
                debug::set_current_request(None);
                state.metrics.request_finished();
                if outcome.is_err() {
                    // Self-healing: count the panic, answer 500, keep
                    // serving. The pool never silently shrinks — and the
                    // flight recorder knows exactly which request did it.
                    state.metrics.worker_panic();
                    let id_text = id.to_string();
                    let _ = http::write_response_with(
                        &mut stream,
                        500,
                        "application/json",
                        &[(REQUEST_ID_HEADER, &id_text)],
                        &router::error_body("internal_error", "handler panicked; worker recovered"),
                    );
                    let what = ctx.line.take().unwrap_or_else(|| "<unparsed request>".to_string());
                    let total_us = elapsed_us(ctx.started);
                    Event::new(Level::Error, "serve.request")
                        .field("request_id", id_text)
                        .field("what", what.as_str())
                        .field("status", 500u64)
                        .field("outcome", "panic")
                        .field("total_us", total_us)
                        .emit();
                    state.flight.record(RequestRecord {
                        id,
                        what,
                        status: 500,
                        outcome: "panic",
                        total_us,
                        parse_us: ctx.parse_us,
                        route_us: ctx.route_us,
                        write_us: 0,
                        ts_ms: now_ms(),
                    });
                }
            }
            Err(_) => break, // channel closed: shutdown
        }
    }
}

/// Best-effort 503 with the uniform error envelope and the request id;
/// the socket already carries a write deadline, so a dead peer cannot
/// stall the caller. Every shed is logged and flight-recorded under its
/// id — admission control is exactly the traffic worth explaining later.
fn shed_503(
    state: &ServeState,
    stream: &mut TcpStream,
    id: RequestId,
    code: &'static str,
    message: &str,
) {
    let id_text = id.to_string();
    let _ = http::write_response_with(
        stream,
        503,
        "application/json",
        &[(REQUEST_ID_HEADER, &id_text)],
        &router::error_body(code, message),
    );
    Event::new(Level::Warn, "serve.request")
        .field("request_id", id_text)
        .field("what", format!("<shed: {code}>"))
        .field("status", 503u64)
        .field("outcome", "shed")
        .field("reason", code)
        .emit();
    state.flight.record(RequestRecord {
        id,
        what: format!("<shed: {code}>"),
        status: 503,
        outcome: "shed",
        total_us: 0,
        parse_us: 0,
        route_us: 0,
        write_us: 0,
        ts_ms: now_ms(),
    });
}

/// Milliseconds since the Unix epoch, for flight-recorder timestamps.
fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn elapsed_us(since: Instant) -> u64 {
    since.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Phase wall times feed one labelled histogram per request phase, in µs.
fn phase_histogram(phase: &'static str) -> maras_obs::Histogram {
    const PHASE_BUCKETS_US: [f64; 8] =
        [10.0, 50.0, 100.0, 250.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0];
    maras_obs::histogram_with(
        "maras_serve_phase_us",
        "request handling wall time by phase, microseconds",
        &PHASE_BUCKETS_US,
        &[("phase", phase)],
    )
}

fn timed<T>(phase: &'static str, f: impl FnOnce() -> T) -> (T, u64) {
    let t = Instant::now();
    let span = maras_obs::span(phase);
    let out = f();
    drop(span);
    let us = t.elapsed().as_micros().min(u64::MAX as u128) as u64;
    phase_histogram(phase).observe(us as f64);
    (out, us)
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock)
}

/// Parses, routes, responds, and records metrics for one connection.
///
/// Every response echoes the request id in [`REQUEST_ID_HEADER`].
/// Notable requests — slower than the threshold, or answered with any
/// status ≥ 400 — become a structured `serve.request` event with the
/// per-phase timing breakdown, plus a flight-recorder entry that
/// `GET /debug/requests` serves; `ctx` carries what this function
/// learned back to the worker in case the router panics mid-route.
fn handle_connection(
    state: &ServeState,
    stream: &mut TcpStream,
    io_timeout: Option<Duration>,
    ctx: &mut RequestCtx,
) {
    let started = ctx.started;
    let request_span = maras_obs::span("request");
    // Satellite of the flight recorder: the request line is captured
    // into `ctx.line` *before* parse errors propagate, so a slowloris
    // cut off by the deadline still yields an attributable event.
    let (parsed, parse_us) =
        timed("parse", || http::read_request_capturing(stream, io_timeout, &mut ctx.line));
    ctx.parse_us = parse_us;
    let (target, endpoint, status, body, failure) = match parsed {
        Ok(req) => {
            ctx.line = Some(format!("{} {}", req.method, req.path));
            let ((endpoint, status, body), route_us) =
                timed("route", || router::respond(state, &req));
            ctx.route_us = route_us;
            (Some(req), endpoint, status, body, None)
        }
        Err(ParseError::TooLarge) => (
            None,
            Endpoint::Other,
            413,
            router::error_body("too_large", "request exceeds size limits"),
            Some("too_large"),
        ),
        Err(ParseError::Malformed(what)) => (
            None,
            Endpoint::Other,
            400,
            router::error_body("malformed_request", what),
            Some("malformed"),
        ),
        // The client blew its I/O deadline (slowloris or dead peer):
        // count it, answer 408 best-effort, and release this worker.
        Err(ParseError::Timeout) => {
            state.metrics.timeout();
            (
                None,
                Endpoint::Other,
                408,
                router::error_body("timeout", "request not received within the I/O deadline"),
                Some("timeout"),
            )
        }
        // Socket died mid-read; nothing to respond to.
        Err(ParseError::Io(_)) => return,
    };
    // The Prometheus endpoint is the one non-JSON body the server emits.
    let content_type = match &target {
        Some(req) if req.method == "GET" && req.path == "/metrics" && status == 200 => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        _ => "application/json",
    };
    let id_text = ctx.id.to_string();
    let (write_result, write_us) = timed("write", || {
        http::write_response_with(
            stream,
            status,
            content_type,
            &[(REQUEST_ID_HEADER, &id_text)],
            &body,
        )
    });
    if let Err(e) = write_result {
        if is_timeout(&e) {
            // The peer stopped reading its own response: count the
            // released worker the same way as a read-side stall.
            state.metrics.timeout();
        }
    }
    let latency_us = elapsed_us(started);
    state.metrics.record(endpoint, latency_us, status >= 400);
    drop(request_span);
    let slow = latency_us > state.slow_threshold_us();
    if slow {
        state.metrics.slow_request();
    }
    if !slow && status < 400 {
        return; // healthy and fast: not flight-recorder material
    }
    let outcome = match failure {
        Some(f) => f,
        None if status >= 400 => "error",
        None => "slow",
    };
    let what = ctx.line.clone().unwrap_or_else(|| "<unparsed request>".to_string());
    let level = if status >= 500 {
        Level::Error
    } else if status >= 400 {
        Level::Warn
    } else {
        Level::Info
    };
    Event::new(level, "serve.request")
        .field("request_id", id_text)
        .field("what", what.as_str())
        .field("status", status)
        .field("outcome", outcome)
        .field("slow", slow)
        .field("total_us", latency_us)
        .field("parse_us", parse_us)
        .field("route_us", ctx.route_us)
        .field("write_us", write_us)
        .emit();
    state.flight.record(RequestRecord {
        id: ctx.id,
        what,
        status,
        outcome,
        total_us: latency_us,
        parse_us,
        route_us: ctx.route_us,
        write_us,
        ts_ms: now_ms(),
    });
}
