//! The std-only concurrent HTTP server.
//!
//! A `TcpListener` accept loop feeds connections to a fixed pool of
//! worker threads over an `mpsc` channel. Every response carries
//! `Connection: close` — one request per connection keeps the protocol
//! handling trivial and is fine for a localhost analytics API. Shutdown
//! is cooperative: [`ServerHandle::shutdown`] flips an `AtomicBool`,
//! pokes the listener with a loopback connect so `accept` returns, and
//! joins every thread.

use crate::http::{self, ParseError};
use crate::metrics::Endpoint;
use crate::router::{self, ServeState};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection (tests, CLI).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept(); an error just means the listener already died.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: a dropped-without-shutdown handle still stops the
        // accept loop; threads are detached rather than joined.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `state`
/// on `n_threads` workers until [`ServerHandle::shutdown`].
pub fn serve(
    state: Arc<ServeState>,
    addr: &str,
    n_threads: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let n_threads = n_threads.max(1);
    let mut workers = Vec::with_capacity(n_threads);
    for i in 0..n_threads {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("maras-serve-{i}"))
                .spawn(move || {
                    loop {
                        // Holding the receiver lock only for the recv keeps
                        // the other workers free to pick up the next socket.
                        let conn = rx.lock().unwrap().recv();
                        match conn {
                            Ok(mut stream) => handle_connection(&state, &mut stream),
                            Err(_) => break, // channel closed: shutdown
                        }
                    }
                })
                .expect("spawn worker thread"),
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("maras-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A send error means every worker exited; stop accepting.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // tx drops here, which unblocks and terminates the workers.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle { addr, state, stop, accept_thread: Some(accept_thread), workers })
}

/// Parses, routes, responds, and records metrics for one connection.
fn handle_connection(state: &ServeState, stream: &mut TcpStream) {
    let started = Instant::now();
    let (endpoint, status, body) = match http::read_request(stream) {
        Ok(req) => router::respond(state, &req),
        Err(ParseError::TooLarge) => {
            (Endpoint::Other, 413, router::error_body("too_large", "request exceeds size limits"))
        }
        Err(ParseError::Malformed(what)) => {
            (Endpoint::Other, 400, router::error_body("malformed_request", what))
        }
        // Socket died mid-read; nothing to respond to.
        Err(ParseError::Io(_)) => return,
    };
    let latency_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    state.metrics.record(endpoint, latency_us, status >= 400);
    let _ = http::write_response(stream, status, &body);
}
