//! The std-only concurrent HTTP server.
//!
//! A `TcpListener` accept loop feeds connections to a fixed pool of
//! worker threads over an `mpsc` channel. Every response carries
//! `Connection: close` — one request per connection keeps the protocol
//! handling trivial and is fine for a localhost analytics API. Shutdown
//! is cooperative: [`ServerHandle::shutdown`] flips an `AtomicBool`,
//! pokes the listener with a loopback connect so `accept` returns, and
//! joins every thread.

use crate::http::{self, ParseError};
use crate::metrics::Endpoint;
use crate::router::{self, ServeState};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A running server: its bound address and the handles to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state, for in-process inspection (tests, CLI).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock accept(); an error just means the listener already died.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Best-effort: a dropped-without-shutdown handle still stops the
        // accept loop; threads are detached rather than joined.
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and serves `state`
/// on `n_threads` workers until [`ServerHandle::shutdown`].
pub fn serve(
    state: Arc<ServeState>,
    addr: &str,
    n_threads: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));

    let n_threads = n_threads.max(1);
    let mut workers = Vec::with_capacity(n_threads);
    for i in 0..n_threads {
        let rx = Arc::clone(&rx);
        let state = Arc::clone(&state);
        workers.push(
            std::thread::Builder::new()
                .name(format!("maras-serve-{i}"))
                .spawn(move || {
                    loop {
                        // Holding the receiver lock only for the recv keeps
                        // the other workers free to pick up the next socket.
                        let conn = rx.lock().unwrap().recv();
                        match conn {
                            Ok(mut stream) => handle_connection(&state, &mut stream),
                            Err(_) => break, // channel closed: shutdown
                        }
                    }
                })
                .expect("spawn worker thread"),
        );
    }

    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("maras-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A send error means every worker exited; stop accepting.
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
            }
            // tx drops here, which unblocks and terminates the workers.
        })
        .expect("spawn accept thread");

    Ok(ServerHandle { addr, state, stop, accept_thread: Some(accept_thread), workers })
}

/// Phase wall times feed one labelled histogram per request phase, in µs.
fn phase_histogram(phase: &'static str) -> maras_obs::Histogram {
    const PHASE_BUCKETS_US: [f64; 8] =
        [10.0, 50.0, 100.0, 250.0, 1_000.0, 5_000.0, 25_000.0, 100_000.0];
    maras_obs::histogram_with(
        "maras_serve_phase_us",
        "request handling wall time by phase, microseconds",
        &PHASE_BUCKETS_US,
        &[("phase", phase)],
    )
}

fn timed<T>(phase: &'static str, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let span = maras_obs::span(phase);
    let out = f();
    drop(span);
    phase_histogram(phase).observe(t.elapsed().as_micros() as f64);
    out
}

/// Parses, routes, responds, and records metrics for one connection.
fn handle_connection(state: &ServeState, stream: &mut TcpStream) {
    let started = Instant::now();
    let request_span = maras_obs::span("request");
    let parsed = timed("parse", || http::read_request(stream));
    let (target, endpoint, status, body) = match parsed {
        Ok(req) => {
            let (endpoint, status, body) = timed("route", || router::respond(state, &req));
            (Some(req), endpoint, status, body)
        }
        Err(ParseError::TooLarge) => (
            None,
            Endpoint::Other,
            413,
            router::error_body("too_large", "request exceeds size limits"),
        ),
        Err(ParseError::Malformed(what)) => {
            (None, Endpoint::Other, 400, router::error_body("malformed_request", what))
        }
        // Socket died mid-read; nothing to respond to.
        Err(ParseError::Io(_)) => return,
    };
    // The Prometheus endpoint is the one non-JSON body the server emits.
    let content_type = match &target {
        Some(req) if req.method == "GET" && req.path == "/metrics" && status == 200 => {
            "text/plain; version=0.0.4; charset=utf-8"
        }
        _ => "application/json",
    };
    timed("write", || {
        let _ = http::write_response(stream, status, content_type, &body);
    });
    let latency_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    state.metrics.record(endpoint, latency_us, status >= 400);
    drop(request_span);
    if latency_us > state.slow_threshold_us() {
        state.metrics.slow_request();
        let what = target.map_or_else(
            || "<unparsed request>".to_string(),
            |req| format!("{} {}", req.method, req.path),
        );
        eprintln!("slow request: {what} -> {status} took {:.1} ms", latency_us as f64 / 1_000.0);
    }
}
