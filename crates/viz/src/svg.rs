//! A minimal, dependency-free SVG document builder.
//!
//! Only the primitives the MARAS figures need: circles, annular-sector
//! paths, rounded-top bars, lines, text, and `<title>` hover hints. All
//! text content and attribute values are XML-escaped at the call boundary.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// An SVG document under construction.
#[derive(Debug, Clone)]
pub struct SvgDoc {
    width: f64,
    height: f64,
    body: String,
}

/// Escapes a string for use in XML text or attribute context.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

fn fmt_num(v: f64) -> String {
    // Two decimals is plenty for screen coordinates and keeps files small.
    let r = (v * 100.0).round() / 100.0;
    if r == r.trunc() {
        format!("{}", r as i64)
    } else {
        format!("{r}")
    }
}

impl SvgDoc {
    /// Creates a document with a background rect in the given fill.
    pub fn new(width: f64, height: f64, background: &str) -> Self {
        let mut doc = SvgDoc { width, height, body: String::new() };
        let _ = write!(
            doc.body,
            r#"<rect x="0" y="0" width="{}" height="{}" fill="{}"/>"#,
            fmt_num(width),
            fmt_num(height),
            escape(background)
        );
        doc
    }

    /// Document width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Document height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// A filled circle with an optional stroke and hover title.
    #[allow(clippy::too_many_arguments)]
    pub fn circle(
        &mut self,
        cx: f64,
        cy: f64,
        r: f64,
        fill: &str,
        stroke: Option<(&str, f64)>,
        title: Option<&str>,
    ) {
        let _ = write!(
            self.body,
            r#"<circle cx="{}" cy="{}" r="{}" fill="{}""#,
            fmt_num(cx),
            fmt_num(cy),
            fmt_num(r),
            escape(fill)
        );
        if let Some((color, w)) = stroke {
            let _ =
                write!(self.body, r#" stroke="{}" stroke-width="{}""#, escape(color), fmt_num(w));
        }
        self.close_element("circle", title);
    }

    /// An annular sector (ring segment) between `r_inner` and `r_outer`,
    /// from `start_angle` to `end_angle` (radians, 0 at 3 o'clock, clockwise
    /// in screen space).
    #[allow(clippy::too_many_arguments)]
    pub fn annular_sector(
        &mut self,
        cx: f64,
        cy: f64,
        r_inner: f64,
        r_outer: f64,
        start_angle: f64,
        end_angle: f64,
        fill: &str,
        stroke: Option<(&str, f64)>,
        title: Option<&str>,
    ) {
        let (x0o, y0o) = polar(cx, cy, r_outer, start_angle);
        let (x1o, y1o) = polar(cx, cy, r_outer, end_angle);
        let (x0i, y0i) = polar(cx, cy, r_inner, start_angle);
        let (x1i, y1i) = polar(cx, cy, r_inner, end_angle);
        let large = if (end_angle - start_angle).abs() > std::f64::consts::PI { 1 } else { 0 };
        let d = format!(
            "M {} {} A {} {} 0 {large} 1 {} {} L {} {} A {} {} 0 {large} 0 {} {} Z",
            fmt_num(x0o),
            fmt_num(y0o),
            fmt_num(r_outer),
            fmt_num(r_outer),
            fmt_num(x1o),
            fmt_num(y1o),
            fmt_num(x1i),
            fmt_num(y1i),
            fmt_num(r_inner),
            fmt_num(r_inner),
            fmt_num(x0i),
            fmt_num(y0i),
        );
        let _ = write!(self.body, r#"<path d="{}" fill="{}""#, d, escape(fill));
        if let Some((color, w)) = stroke {
            let _ = write!(
                self.body,
                r#" stroke="{}" stroke-width="{}" stroke-linejoin="round""#,
                escape(color),
                fmt_num(w)
            );
        }
        self.close_element("path", title);
    }

    /// A bar with a rounded data-end (top for vertical bars), anchored flat
    /// at the baseline.
    #[allow(clippy::too_many_arguments)]
    pub fn bar_rounded_top(
        &mut self,
        x: f64,
        y: f64,
        w: f64,
        h: f64,
        radius: f64,
        fill: &str,
        title: Option<&str>,
    ) {
        let r = radius.min(w / 2.0).min(h);
        let d = format!(
            "M {} {} L {} {} Q {} {} {} {} L {} {} Q {} {} {} {} L {} {} Z",
            fmt_num(x),
            fmt_num(y + h),
            fmt_num(x),
            fmt_num(y + r),
            fmt_num(x),
            fmt_num(y),
            fmt_num(x + r),
            fmt_num(y),
            fmt_num(x + w - r),
            fmt_num(y),
            fmt_num(x + w),
            fmt_num(y),
            fmt_num(x + w),
            fmt_num(y + r),
            fmt_num(x + w),
            fmt_num(y + h),
        );
        let _ = write!(self.body, r#"<path d="{}" fill="{}""#, d, escape(fill));
        self.close_element("path", title);
    }

    /// A straight line.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = write!(
            self.body,
            r#"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="{}" stroke-width="{}"/>"#,
            fmt_num(x1),
            fmt_num(y1),
            fmt_num(x2),
            fmt_num(y2),
            escape(stroke),
            fmt_num(width)
        );
    }

    /// Text with the given anchor (`start`/`middle`/`end`).
    #[allow(clippy::too_many_arguments)]
    pub fn text(
        &mut self,
        x: f64,
        y: f64,
        content: &str,
        size: f64,
        fill: &str,
        anchor: &str,
        bold: bool,
    ) {
        let weight = if bold { " font-weight=\"600\"" } else { "" };
        let _ = write!(
            self.body,
            r#"<text x="{}" y="{}" font-family="system-ui, sans-serif" font-size="{}" fill="{}" text-anchor="{}"{}>{}</text>"#,
            fmt_num(x),
            fmt_num(y),
            fmt_num(size),
            escape(fill),
            escape(anchor),
            weight,
            escape(content)
        );
    }

    /// A plain (unrounded) rect, for legend swatches.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        let _ = write!(
            self.body,
            r#"<rect x="{}" y="{}" width="{}" height="{}" fill="{}"/>"#,
            fmt_num(x),
            fmt_num(y),
            fmt_num(w),
            fmt_num(h),
            escape(fill)
        );
    }

    /// Embeds another document's body translated to `(x, y)` — how the
    /// panoramagram composes per-cluster glyphs.
    pub fn embed(&mut self, other: &SvgDoc, x: f64, y: f64) {
        let _ = write!(
            self.body,
            r#"<g transform="translate({},{})">{}</g>"#,
            fmt_num(x),
            fmt_num(y),
            other.body
        );
    }

    fn close_element(&mut self, element: &str, title: Option<&str>) {
        match title {
            Some(t) => {
                let _ = write!(self.body, "><title>{}</title></{element}>", escape(t));
            }
            None => self.body.push_str("/>"),
        }
    }

    /// Serializes the document.
    pub fn render(&self) -> String {
        format!(
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" viewBox="0 0 {} {}">{}</svg>"#,
            fmt_num(self.width),
            fmt_num(self.height),
            fmt_num(self.width),
            fmt_num(self.height),
            self.body
        )
    }

    /// Writes the document to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

fn polar(cx: f64, cy: f64, r: f64, angle: f64) -> (f64, f64) {
    (cx + r * angle.cos(), cy + r * angle.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_produces_valid_envelope() {
        let doc = SvgDoc::new(100.0, 50.0, "#ffffff");
        let s = doc.render();
        assert!(s.starts_with("<svg "));
        assert!(s.ends_with("</svg>"));
        assert!(s.contains(r#"viewBox="0 0 100 50""#));
    }

    #[test]
    fn escape_handles_xml_specials() {
        assert_eq!(escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn circle_without_title_self_closes() {
        let mut doc = SvgDoc::new(10.0, 10.0, "#fff");
        doc.circle(5.0, 5.0, 2.0, "#123456", None, None);
        assert!(doc.render().contains(r##"<circle cx="5" cy="5" r="2" fill="#123456"/>"##));
    }

    #[test]
    fn bar_and_line_and_text_render() {
        let mut doc = SvgDoc::new(100.0, 100.0, "#fff");
        doc.bar_rounded_top(10.0, 20.0, 8.0, 30.0, 4.0, "#2a78d6", None);
        doc.line(0.0, 50.0, 100.0, 50.0, "#e5e4e0", 1.0);
        doc.text(50.0, 95.0, "label & more", 10.0, "#0b0b0b", "middle", false);
        let s = doc.render();
        assert!(s.contains("<path d=\"M 10 50"));
        assert!(s.contains("<line "));
        assert!(s.contains("label &amp; more"));
    }

    #[test]
    fn annular_sector_path_is_closed() {
        let mut doc = SvgDoc::new(100.0, 100.0, "#fff");
        doc.annular_sector(
            50.0,
            50.0,
            10.0,
            20.0,
            -std::f64::consts::FRAC_PI_2,
            0.0,
            "#2a78d6",
            Some(("#fcfcfb", 2.0)),
            None,
        );
        let s = doc.render();
        assert!(s.contains(" Z\""), "{s}");
        assert!(s.contains("stroke-width=\"2\""));
    }

    #[test]
    fn embed_translates_child() {
        let mut parent = SvgDoc::new(200.0, 200.0, "#fff");
        let mut child = SvgDoc::new(50.0, 50.0, "#eee");
        child.circle(25.0, 25.0, 5.0, "#000", None, None);
        parent.embed(&child, 100.0, 20.0);
        assert!(parent.render().contains(r#"transform="translate(100,20)""#));
    }

    #[test]
    fn numbers_are_compact() {
        assert_eq!(fmt_num(10.0), "10");
        assert_eq!(fmt_num(10.456), "10.46");
        assert_eq!(fmt_num(-0.5), "-0.5");
    }
}
