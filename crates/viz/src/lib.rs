//! Visualization of drug-ADR associations (thesis §4): the Contextual Glyph,
//! the MCAC bar-chart it was evaluated against (Fig. 5.3), and the
//! panoramagram-of-glyphs overview (Fig. 4.2) — all rendered to static SVG.
//!
//! Layout follows the thesis exactly:
//!
//! * the **inner circle**'s diameter encodes the target rule's confidence;
//! * **circular sectors** around it represent contextual rules; the distance
//!   from each sector's arc to the inner circle encodes that rule's
//!   confidence;
//! * starting from 12 o'clock, sectors are laid out by antecedent
//!   cardinality, same-cardinality rules sharing a color (the darker the
//!   larger) and ordered by confidence.
//!
//! "The larger the inner circle and the smaller the outer circles are, the
//! higher the rank of the group" — a big orange core inside a shallow blue
//! ring *is* the visual signature of an interesting interaction.
//!
//! Colors come from a validated, colorblind-safe reference palette: a blue
//! ordinal ramp for context levels (one hue, light→dark, never below the
//! 2:1 ordinal floor) and a single orange accent for the target, with text
//! in ink tokens rather than series colors.

#![warn(missing_docs)]

pub mod barchart;
pub mod color;
pub mod glyph;
pub mod panorama;
pub mod sparkline;
pub mod svg;
pub mod theme;

pub use barchart::{grouped_bars, mcac_barchart, BarGroup, GroupedBarConfig};
pub use glyph::{glyph_svg, GlyphConfig, GlyphGeometry, SectorGeometry};
pub use panorama::{panorama_svg, PanoramaConfig};
pub use sparkline::{sparkline_svg, SparklineConfig};
pub use svg::SvgDoc;
pub use theme::{Theme, DARK, LIGHT};
