//! Light/dark chart themes.
//!
//! Dark mode is *selected*, not auto-inverted: its steps come from the same
//! validated ramps, chosen for the dark surface (OKLCH L ≈ 0.48–0.67 band,
//! ≥ 2:1 against `#1a1a19` for ordinal marks). The ordinal window therefore
//! *shifts* between modes — light mode may use the darkest steps, dark mode
//! may use the lightest — rather than flipping.

/// A chart theme: every color role the MARAS figures use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Theme {
    /// Chart surface.
    pub surface: &'static str,
    /// Primary ink (titles, values).
    pub text_primary: &'static str,
    /// Secondary ink (axis labels, captions).
    pub text_secondary: &'static str,
    /// Recessive grid stroke.
    pub grid: &'static str,
    /// Accent for the evaluated (target) rule — orange slot.
    pub target: &'static str,
    /// Categorical slot 1 (blue).
    pub series_blue: &'static str,
    /// Categorical slot 2 (aqua).
    pub series_aqua: &'static str,
    /// Blue ordinal ramp (light→dark), windowed for this surface.
    pub blue_ordinal: &'static [&'static str],
}

/// Light-mode window: steps 250–700 (all ≥ 2:1 on `#fcfcfb`).
const BLUE_ORDINAL_LIGHT: [&str; 10] = [
    "#86b6ef", "#6da7ec", "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95",
    "#104281", "#0d366b",
];

/// Dark-mode window: steps 100–600 (no darker than 600, which still clears
/// 2:1 on `#1a1a19`; the lightest steps carry the small-cardinality levels).
const BLUE_ORDINAL_DARK: [&str; 10] = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7", "#3987e5", "#256abf",
    "#1c5cab", "#184f95",
];

/// The light theme (reference palette, light column).
pub const LIGHT: Theme = Theme {
    surface: "#fcfcfb",
    text_primary: "#0b0b0b",
    text_secondary: "#52514e",
    grid: "#e5e4e0",
    target: "#eb6834",
    series_blue: "#2a78d6",
    series_aqua: "#1baf7a",
    blue_ordinal: &BLUE_ORDINAL_LIGHT,
};

/// The dark theme (reference palette, dark column).
pub const DARK: Theme = Theme {
    surface: "#1a1a19",
    text_primary: "#ffffff",
    text_secondary: "#c3c2b7",
    grid: "#343432",
    target: "#d95926",
    series_blue: "#3987e5",
    series_aqua: "#199e70",
    blue_ordinal: &BLUE_ORDINAL_DARK,
};

impl Default for Theme {
    fn default() -> Self {
        LIGHT
    }
}

impl Theme {
    /// Color for context level `level_index` of `n_levels`, darker for
    /// larger antecedent cardinality (thesis: "the darker the larger").
    /// `level_index` 0 is the largest cardinality, matching `Mcac::levels`.
    pub fn level_color(&self, level_index: usize, n_levels: usize) -> &'static str {
        assert!(n_levels >= 1 && level_index < n_levels);
        let n = self.blue_ordinal.len();
        if n_levels == 1 {
            return self.blue_ordinal[n / 2];
        }
        let pos = (n_levels - 1 - level_index) as f64 / (n_levels - 1) as f64;
        let idx = (pos * (n - 1) as f64).round() as usize;
        self.blue_ordinal[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_light() {
        assert_eq!(Theme::default(), LIGHT);
    }

    #[test]
    fn dark_is_not_an_inversion() {
        // Dark target/ordinal steps are *selected* values, distinct from
        // both the light values and any trivial transform of them.
        assert_ne!(DARK.target, LIGHT.target);
        assert_ne!(DARK.blue_ordinal[0], LIGHT.blue_ordinal[0]);
        // Shared steps exist because the window shifted, not flipped.
        assert!(DARK.blue_ordinal.contains(&LIGHT.blue_ordinal[0]));
    }

    #[test]
    fn level_color_monotone_in_both_themes() {
        for theme in [LIGHT, DARK] {
            let idx = |c: &str| theme.blue_ordinal.iter().position(|&x| x == c).expect("from ramp");
            for n in 2..=6 {
                let picked: Vec<usize> = (0..n).map(|i| idx(theme.level_color(i, n))).collect();
                assert!(picked.windows(2).all(|w| w[0] > w[1]), "{picked:?}");
            }
        }
    }

    #[test]
    fn every_role_is_a_hex_color() {
        for theme in [LIGHT, DARK] {
            for c in [
                theme.surface,
                theme.text_primary,
                theme.text_secondary,
                theme.grid,
                theme.target,
                theme.series_blue,
                theme.series_aqua,
            ]
            .into_iter()
            .chain(theme.blue_ordinal.iter().copied())
            {
                assert!(c.starts_with('#') && c.len() == 7, "bad color {c}");
                assert!(c[1..].chars().all(|ch| ch.is_ascii_hexdigit()));
            }
        }
    }
}
