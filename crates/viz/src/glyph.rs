//! The Contextual Glyph (thesis §4, Fig. 4.1).
//!
//! Geometry is computed separately from rendering so the layout invariants
//! are testable: the inner circle's radius encodes the target rule's
//! confidence; each surrounding annular sector's depth (arc distance from
//! the inner circle) encodes one contextual rule's confidence; sectors start
//! at 12 o'clock, laid out clockwise by antecedent cardinality (largest
//! first, matching `Mcac::levels`), same-cardinality sectors sharing a color
//! (darker = larger) and ordered by confidence.

use crate::svg::SvgDoc;
use crate::theme::Theme;
use maras_mcac::Mcac;
use maras_rules::DrugAdrRule;
use std::f64::consts::{PI, TAU};

/// Rendering parameters for one glyph.
#[derive(Debug, Clone)]
pub struct GlyphConfig {
    /// Square canvas side in px.
    pub size: f64,
    /// Outer margin in px (grows automatically when labels are shown).
    pub margin: f64,
    /// Gap between the inner circle and the sector band, px.
    pub ring_gap: f64,
    /// Render the zoom-in view (Fig. 4.3): per-sector drug labels and
    /// confidence values.
    pub show_labels: bool,
    /// Optional caption under the glyph.
    pub caption: Option<String>,
    /// Color theme (light by default; dark is a selected palette, not an
    /// inversion).
    pub theme: Theme,
}

impl Default for GlyphConfig {
    fn default() -> Self {
        GlyphConfig {
            size: 220.0,
            margin: 10.0,
            ring_gap: 3.0,
            show_labels: false,
            caption: None,
            theme: Theme::default(),
        }
    }
}

impl GlyphConfig {
    /// The Fig. 4.3 zoom-in view: larger canvas with sector labels.
    pub fn zoomed() -> Self {
        GlyphConfig {
            size: 480.0,
            margin: 90.0,
            ring_gap: 4.0,
            show_labels: true,
            caption: None,
            theme: Theme::default(),
        }
    }
}

/// One contextual rule's sector.
#[derive(Debug, Clone)]
pub struct SectorGeometry {
    /// Start angle (radians, screen space, 0 at 3 o'clock).
    pub start_angle: f64,
    /// End angle.
    pub end_angle: f64,
    /// Outer radius of the sector arc.
    pub outer_radius: f64,
    /// Context level index (0 = largest cardinality), selecting the color.
    pub level_index: usize,
    /// Antecedent cardinality of the rule.
    pub cardinality: usize,
    /// The contextual rule's confidence (drives `outer_radius`).
    pub confidence: f64,
    /// Index of the rule within the flattened context (tooltip lookup).
    pub rule_index: usize,
}

/// Full glyph layout.
#[derive(Debug, Clone)]
pub struct GlyphGeometry {
    /// Canvas center.
    pub center: (f64, f64),
    /// Inner-circle radius (∝ target confidence).
    pub inner_radius: f64,
    /// Inner radius of the sector band.
    pub band_inner: f64,
    /// Maximum outer radius a full-confidence sector reaches.
    pub band_outer: f64,
    /// The sectors, in layout order (12 o'clock, clockwise).
    pub sectors: Vec<SectorGeometry>,
    /// Target rule confidence.
    pub target_confidence: f64,
}

impl GlyphGeometry {
    /// Computes the layout of a cluster under a configuration.
    pub fn from_cluster(cluster: &Mcac, config: &GlyphConfig) -> Self {
        let caption_space = if config.caption.is_some() { 18.0 } else { 0.0 };
        let half = config.size / 2.0;
        let center = (half, half - caption_space / 2.0);
        let max_outer = half - config.margin - caption_space / 2.0;
        // Reserve a sector band at least as deep as the largest inner circle.
        let inner_max = max_outer * 0.42;
        let p = cluster.target.confidence().clamp(0.0, 1.0);
        // Keep a visible nucleus even at low confidence.
        let inner_radius = inner_max * (0.15 + 0.85 * p);
        let band_inner = inner_max + config.ring_gap;
        let band_outer = max_outer;

        let n_levels = cluster.levels.len();
        let n_sectors: usize = cluster.context_size();
        let step = TAU / n_sectors.max(1) as f64;
        let mut sectors = Vec::with_capacity(n_sectors);
        let mut angle = -PI / 2.0; // 12 o'clock
        let mut rule_index = 0usize;
        for (level_index, level) in cluster.levels.iter().enumerate() {
            for rule in &level.rules {
                let c = rule.confidence().clamp(0.0, 1.0);
                // Depth ∝ confidence, with a sliver floor so empty context
                // slots remain visible (Def. 3.5.2 demands the full powerset).
                let depth = (band_outer - band_inner) * c;
                let outer_radius = (band_inner + depth).max(band_inner + 1.5);
                sectors.push(SectorGeometry {
                    start_angle: angle,
                    end_angle: angle + step,
                    outer_radius,
                    level_index,
                    cardinality: level.cardinality,
                    confidence: c,
                    rule_index,
                });
                angle += step;
                rule_index += 1;
            }
            let _ = n_levels;
        }
        GlyphGeometry {
            center,
            inner_radius,
            band_inner,
            band_outer,
            sectors,
            target_confidence: p,
        }
    }
}

/// Renders a cluster as a contextual glyph. `namer` supplies human-readable
/// rule descriptions for hover titles and zoom labels; without it, item ids
/// are shown.
pub fn glyph_svg(
    cluster: &Mcac,
    config: &GlyphConfig,
    namer: Option<&dyn Fn(&DrugAdrRule) -> String>,
) -> SvgDoc {
    let geom = GlyphGeometry::from_cluster(cluster, config);
    let theme = config.theme;
    let mut doc = SvgDoc::new(config.size, config.size, theme.surface);
    let (cx, cy) = geom.center;
    let n_levels = cluster.levels.len();
    let describe = |rule: &DrugAdrRule| -> String {
        match namer {
            Some(f) => f(rule),
            None => rule.to_string(),
        }
    };

    // Context sectors first (under the inner circle), with a 2px surface
    // stroke as the spacer between adjacent fills.
    let context: Vec<&DrugAdrRule> = cluster.context_rules().collect();
    for s in &geom.sectors {
        let rule = context[s.rule_index];
        let fill = theme.level_color(s.level_index, n_levels);
        let title = format!("{} (conf {:.2})", describe(rule), s.confidence);
        doc.annular_sector(
            cx,
            cy,
            geom.band_inner,
            s.outer_radius,
            s.start_angle,
            s.end_angle,
            fill,
            Some((theme.surface, 2.0)),
            Some(&title),
        );
        if config.show_labels {
            let mid = (s.start_angle + s.end_angle) / 2.0;
            let r = geom.band_outer + 10.0;
            let (lx, ly) = (cx + r * mid.cos(), cy + r * mid.sin());
            let anchor = if mid.cos() > 0.15 {
                "start"
            } else if mid.cos() < -0.15 {
                "end"
            } else {
                "middle"
            };
            let label = format!("{} · {:.2}", describe(rule), s.confidence);
            doc.text(lx, ly, &label, 10.0, theme.text_secondary, anchor, false);
        }
    }

    // Target rule nucleus.
    let target_title =
        format!("{} (conf {:.2})", describe(&cluster.target), geom.target_confidence);
    doc.circle(
        cx,
        cy,
        geom.inner_radius,
        theme.target,
        Some((theme.surface, 2.0)),
        Some(&target_title),
    );
    // Direct label: the one number that matters (the target's confidence).
    doc.text(
        cx,
        cy + 4.0,
        &format!("{:.2}", geom.target_confidence),
        12.0,
        theme.surface,
        "middle",
        true,
    );

    // Fig. 4.1's "# of Drugs" legend: one swatch per context level, shown
    // in the zoom view where there is room.
    if config.show_labels {
        let lx = 10.0;
        let mut ly = 20.0;
        doc.text(lx, ly, "# of Drugs", 11.0, theme.text_primary, "start", true);
        for (level_index, level) in cluster.levels.iter().enumerate() {
            ly += 16.0;
            doc.rect(lx, ly - 9.0, 11.0, 11.0, theme.level_color(level_index, n_levels));
            doc.text(
                lx + 16.0,
                ly,
                &level.cardinality.to_string(),
                10.0,
                theme.text_secondary,
                "start",
                false,
            );
        }
        ly += 16.0;
        doc.rect(lx, ly - 9.0, 11.0, 11.0, theme.target);
        doc.text(lx + 16.0, ly, "target rule", 10.0, theme.text_secondary, "start", false);
    }

    if let Some(caption) = &config.caption {
        doc.text(
            config.size / 2.0,
            config.size - 6.0,
            caption,
            11.0,
            theme.text_primary,
            "middle",
            false,
        );
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet, TransactionDb};

    fn cluster(rows: &[&[u32]], drugs: &[u32], adrs: &[u32]) -> Mcac {
        let db =
            TransactionDb::new(rows.iter().map(|r| r.iter().map(|&i| Item(i)).collect()).collect());
        let t = DrugAdrRule::from_parts(
            ItemSet::from_ids(drugs.iter().copied()),
            ItemSet::from_ids(adrs.iter().copied()),
            &db,
        );
        Mcac::build(t, &db)
    }

    fn three_drug_cluster() -> Mcac {
        cluster(&[&[0, 1, 2, 10], &[0, 1, 2, 10], &[0, 10], &[1, 3], &[2, 4]], &[0, 1, 2], &[10])
    }

    #[test]
    fn sectors_cover_the_full_circle() {
        let g = GlyphGeometry::from_cluster(&three_drug_cluster(), &GlyphConfig::default());
        assert_eq!(g.sectors.len(), 6); // 2^3 - 2
        let step = TAU / 6.0;
        for (i, s) in g.sectors.iter().enumerate() {
            assert!((s.end_angle - s.start_angle - step).abs() < 1e-9);
            assert!((s.start_angle - (-PI / 2.0 + i as f64 * step)).abs() < 1e-9);
        }
        // Last sector ends back at 12 o'clock.
        let last = g.sectors.last().unwrap();
        assert!((last.end_angle - (3.0 * PI / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn sector_depth_tracks_confidence() {
        let g = GlyphGeometry::from_cluster(&three_drug_cluster(), &GlyphConfig::default());
        for s in &g.sectors {
            assert!(s.outer_radius >= g.band_inner);
            assert!(s.outer_radius <= g.band_outer + 1e-9);
        }
        // Higher-confidence sectors reach further out.
        let mut by_conf = g.sectors.clone();
        by_conf.sort_by(|a, b| a.confidence.partial_cmp(&b.confidence).unwrap());
        for w in by_conf.windows(2) {
            assert!(w[0].outer_radius <= w[1].outer_radius + 1e-9);
        }
    }

    #[test]
    fn inner_radius_grows_with_target_confidence() {
        let strong = cluster(&[&[0, 1, 10], &[0, 1, 10]], &[0, 1], &[10]);
        let weak = cluster(&[&[0, 1, 10], &[0, 1, 11], &[0, 1, 12], &[0, 1, 13]], &[0, 1], &[10]);
        let cfg = GlyphConfig::default();
        let gs = GlyphGeometry::from_cluster(&strong, &cfg);
        let gw = GlyphGeometry::from_cluster(&weak, &cfg);
        assert!(gs.target_confidence > gw.target_confidence);
        assert!(gs.inner_radius > gw.inner_radius);
    }

    #[test]
    fn levels_ordered_largest_cardinality_first() {
        let g = GlyphGeometry::from_cluster(&three_drug_cluster(), &GlyphConfig::default());
        let cards: Vec<usize> = g.sectors.iter().map(|s| s.cardinality).collect();
        assert_eq!(cards, vec![2, 2, 2, 1, 1, 1]);
        assert!(g.sectors[0].level_index < g.sectors[5].level_index);
    }

    #[test]
    fn svg_renders_with_titles_and_caption() {
        let c = three_drug_cluster();
        let cfg = GlyphConfig { caption: Some("rank #1 · 0.42".into()), ..Default::default() };
        let svg = glyph_svg(&c, &cfg, None).render();
        assert!(svg.contains("<title>"));
        assert!(svg.contains("rank #1"));
        assert!(svg.contains(crate::theme::LIGHT.target));
    }

    #[test]
    fn zoomed_view_labels_sectors() {
        let c = three_drug_cluster();
        let namer = |r: &DrugAdrRule| format!("CTX{}", r.drugs.len());
        let svg = glyph_svg(&c, &GlyphConfig::zoomed(), Some(&namer)).render();
        assert!(svg.contains("CTX1"));
        assert!(svg.contains("CTX2"));
        // Fig 4.1 legend present in zoom view only.
        assert!(svg.contains("# of Drugs"));
        assert!(svg.contains("target rule"));
        let plain = glyph_svg(&c, &GlyphConfig::default(), Some(&namer)).render();
        assert!(!plain.contains("# of Drugs"));
    }
}
