//! The validated reference palette (light mode), applied by role.
//!
//! Sources: the data-viz reference palette instance. Context levels use the
//! blue **ordinal** ramp (one hue, light→dark; ordinal marks start no
//! lighter than step 250 so every step clears the 2:1 surface floor). The
//! target rule uses the orange categorical accent — blue/orange is the
//! classic CVD-safe pair. Text wears ink tokens, never series colors.

/// Chart surface (light).
pub const SURFACE: &str = "#fcfcfb";
/// Primary ink for titles and values.
pub const TEXT_PRIMARY: &str = "#0b0b0b";
/// Secondary ink for axis and captions.
pub const TEXT_SECONDARY: &str = "#52514e";
/// Recessive grid/axis stroke.
pub const GRID: &str = "#e5e4e0";
/// Accent for the evaluated (target) rule — categorical slot 8, orange.
pub const TARGET: &str = "#eb6834";
/// Categorical slot 1 (blue), for second-series needs.
pub const SERIES_BLUE: &str = "#2a78d6";
/// Categorical slot 2 (aqua), for third-series needs.
pub const SERIES_AQUA: &str = "#1baf7a";

/// Blue ordinal ramp, steps 250–700 (light mode): light→dark, all ≥ 2:1 on
/// the light surface.
pub const BLUE_ORDINAL: [&str; 10] = [
    "#86b6ef", // 250
    "#6da7ec", // 300
    "#5598e7", // 350
    "#3987e5", // 400
    "#2a78d6", // 450
    "#256abf", // 500
    "#1c5cab", // 550
    "#184f95", // 600
    "#104281", // 650
    "#0d366b", // 700
];

/// Color for context level `level_index` out of `n_levels`, darker for
/// larger antecedent cardinality (the thesis's "the darker the larger").
///
/// `level_index` counts from the **largest** cardinality (0 = cardinality
/// `n−1`, matching `Mcac::levels` order), so index 0 gets the darkest step.
pub fn level_color(level_index: usize, n_levels: usize) -> &'static str {
    assert!(n_levels >= 1 && level_index < n_levels);
    let n = BLUE_ORDINAL.len();
    if n_levels == 1 {
        return BLUE_ORDINAL[n / 2];
    }
    // Spread levels across the ramp; level_index 0 (largest cardinality)
    // takes the darkest end.
    let pos = (n_levels - 1 - level_index) as f64 / (n_levels - 1) as f64;
    let idx = (pos * (n - 1) as f64).round() as usize;
    BLUE_ORDINAL[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_uses_mid_ramp() {
        assert_eq!(level_color(0, 1), BLUE_ORDINAL[5]);
    }

    #[test]
    fn largest_cardinality_is_darkest() {
        // 3 levels (4-drug cluster): level 0 = k=3 darkest, level 2 = k=1 lightest.
        assert_eq!(level_color(0, 3), *BLUE_ORDINAL.last().unwrap());
        assert_eq!(level_color(2, 3), BLUE_ORDINAL[0]);
    }

    #[test]
    fn two_levels_use_ramp_extremes() {
        assert_eq!(level_color(0, 2), *BLUE_ORDINAL.last().unwrap());
        assert_eq!(level_color(1, 2), BLUE_ORDINAL[0]);
    }

    #[test]
    fn monotone_darkness_ordering() {
        // Ramp indices must strictly decrease as level_index grows.
        let idx = |c: &str| BLUE_ORDINAL.iter().position(|&x| x == c).unwrap();
        for n in 2..=6 {
            let picked: Vec<usize> = (0..n).map(|i| idx(level_color(i, n))).collect();
            assert!(picked.windows(2).all(|w| w[0] > w[1]), "n={n}: {picked:?}");
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_level_panics() {
        level_color(3, 3);
    }
}
