//! The panoramagram of glyphs (thesis Fig. 4.2): the ranked clusters as a
//! small-multiple grid, best first, so an analyst can scan for the "large
//! core, shallow ring" signature and compare similarly-ranked groups.

use crate::glyph::{glyph_svg, GlyphConfig};
use crate::svg::SvgDoc;
use crate::theme::Theme;
use maras_mcac::RankedMcac;
use maras_rules::DrugAdrRule;

/// Grid layout parameters.
#[derive(Debug, Clone)]
pub struct PanoramaConfig {
    /// Glyphs per row.
    pub columns: usize,
    /// Side of each glyph cell, px.
    pub cell: f64,
    /// Overall title.
    pub title: String,
    /// Color theme (propagated to every glyph cell).
    pub theme: Theme,
}

impl Default for PanoramaConfig {
    fn default() -> Self {
        PanoramaConfig {
            columns: 5,
            cell: 180.0,
            title: "MARAS ranked drug-drug interactions".into(),
            theme: Theme::default(),
        }
    }
}

/// Renders ranked clusters as a glyph grid. `namer` labels rules for hover
/// titles (canonical names); captions carry rank and score.
pub fn panorama_svg(
    ranked: &[RankedMcac],
    config: &PanoramaConfig,
    namer: Option<&dyn Fn(&DrugAdrRule) -> String>,
) -> SvgDoc {
    let cols = config.columns.max(1);
    let rows = ranked.len().div_ceil(cols).max(1);
    let header = 36.0;
    let width = cols as f64 * config.cell;
    let height = header + rows as f64 * config.cell;
    let mut doc = SvgDoc::new(width, height, config.theme.surface);
    doc.text(12.0, 22.0, &config.title, 14.0, config.theme.text_primary, "start", true);

    for (i, r) in ranked.iter().enumerate() {
        let col = i % cols;
        let row = i / cols;
        let cfg = GlyphConfig {
            size: config.cell,
            margin: 8.0,
            caption: Some(format!("#{} · excl {:.3}", i + 1, r.score)),
            theme: config.theme,
            ..Default::default()
        };
        let cell = glyph_svg(&r.cluster, &cfg, namer);
        doc.embed(&cell, col as f64 * config.cell, header + row as f64 * config.cell);
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mcac::{rank_clusters, RankingMethod};
    use maras_mining::{Item, ItemSet, TransactionDb};

    fn ranked_fixture(n: usize) -> Vec<RankedMcac> {
        let db = TransactionDb::new(vec![
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(2)],
            vec![Item(1), Item(3)],
        ]);
        (0..n)
            .map(|i| {
                let t = DrugAdrRule::from_parts(
                    ItemSet::from_ids([0u32, 1]),
                    ItemSet::from_ids([10u32]),
                    &db,
                );
                let mut ranked = rank_clusters(vec![t], &db, RankingMethod::Confidence)
                    .pop()
                    .expect("fixture rule is multi-drug");
                ranked.score = 1.0 - i as f64 * 0.1;
                ranked
            })
            .collect()
    }

    #[test]
    fn grid_dimensions_fit_all_glyphs() {
        let ranked = ranked_fixture(7);
        let cfg = PanoramaConfig {
            columns: 3,
            cell: 100.0,
            title: "test".into(),
            theme: Theme::default(),
        };
        let doc = panorama_svg(&ranked, &cfg, None);
        assert_eq!(doc.width(), 300.0);
        assert_eq!(doc.height(), 36.0 + 3.0 * 100.0); // ceil(7/3)=3 rows
        let svg = doc.render();
        assert_eq!(svg.matches("transform=\"translate(").count(), 7);
        assert!(svg.contains("#1"));
        assert!(svg.contains("#7"));
    }

    #[test]
    fn empty_ranking_still_renders_title() {
        let doc = panorama_svg(&[], &PanoramaConfig::default(), None);
        let svg = doc.render();
        assert!(svg.contains("MARAS ranked"));
    }

    #[test]
    fn captions_carry_scores() {
        let ranked = ranked_fixture(2);
        let svg = panorama_svg(&ranked, &PanoramaConfig::default(), None).render();
        assert!(svg.contains("excl 1.000"));
        assert!(svg.contains("excl 0.900"));
    }
}
