//! Sparklines: word-sized trend lines for the report's cross-quarter
//! support series.
//!
//! Mark rules: a 2px line in a single series hue, an endpoint marker with a
//! 2px surface ring, a recessive zero baseline, no axes or grid (a
//! sparkline lives inline with text; its neighbors provide context), and a
//! hover `<title>` carrying the exact values.

use crate::svg::SvgDoc;
use crate::theme::Theme;

/// Sparkline parameters.
#[derive(Debug, Clone)]
pub struct SparklineConfig {
    /// Canvas width, px.
    pub width: f64,
    /// Canvas height, px.
    pub height: f64,
    /// Line color (defaults to the theme's blue).
    pub color: Option<&'static str>,
    /// Color theme.
    pub theme: Theme,
}

impl Default for SparklineConfig {
    fn default() -> Self {
        SparklineConfig { width: 120.0, height: 28.0, color: None, theme: Theme::default() }
    }
}

/// Renders a value series as a sparkline. Scales from 0 to the series max
/// (a support series is a count — zero-anchored scaling is the honest one).
/// Empty input yields just the baseline.
pub fn sparkline_svg(values: &[f64], config: &SparklineConfig) -> SvgDoc {
    let theme = config.theme;
    let color = config.color.unwrap_or(theme.series_blue);
    let mut doc = SvgDoc::new(config.width, config.height, theme.surface);
    let pad = 3.0;
    let w = config.width - 2.0 * pad;
    let h = config.height - 2.0 * pad;
    let baseline_y = pad + h;

    doc.line(pad, baseline_y, pad + w, baseline_y, theme.grid, 1.0);
    if values.is_empty() {
        return doc;
    }
    let max = values.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let x_of = |i: usize| {
        if values.len() == 1 {
            pad + w / 2.0
        } else {
            pad + w * i as f64 / (values.len() - 1) as f64
        }
    };
    let y_of = |v: f64| baseline_y - (v / max).clamp(0.0, 1.0) * h;

    // Polyline as successive segments (2px stroke).
    for i in 1..values.len() {
        doc.line(x_of(i - 1), y_of(values[i - 1]), x_of(i), y_of(values[i]), color, 2.0);
    }
    // Endpoint marker with a surface ring, titled with the whole series.
    let last = values.len() - 1;
    let title = format!(
        "series: {}",
        values.iter().map(|v| format!("{v:.0}")).collect::<Vec<_>>().join(" -> ")
    );
    doc.circle(
        x_of(last),
        y_of(values[last]),
        3.0,
        color,
        Some((theme.surface, 2.0)),
        Some(&title),
    );
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_segments_and_endpoint() {
        let svg = sparkline_svg(&[1.0, 3.0, 2.0, 5.0], &SparklineConfig::default()).render();
        // Baseline + 3 segments = 4 lines; 1 endpoint circle with title.
        assert_eq!(svg.matches("<line").count(), 4);
        assert_eq!(svg.matches("<circle").count(), 1);
        assert!(svg.contains("1 -&gt; 3 -&gt; 2 -&gt; 5"));
    }

    #[test]
    fn empty_series_is_just_baseline() {
        let svg = sparkline_svg(&[], &SparklineConfig::default()).render();
        assert_eq!(svg.matches("<line").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 0);
    }

    #[test]
    fn single_point_gets_a_marker() {
        let svg = sparkline_svg(&[7.0], &SparklineConfig::default()).render();
        assert_eq!(svg.matches("<circle").count(), 1);
        assert_eq!(svg.matches("<line").count(), 1);
    }

    #[test]
    fn values_scale_within_canvas() {
        let cfg = SparklineConfig::default();
        let doc = sparkline_svg(&[0.0, 100.0, 50.0], &cfg);
        let svg = doc.render();
        // The peak (100) must sit at the top pad (y = 3), the zero at the
        // baseline (y = height - 3 = 25).
        assert!(svg.contains("y2=\"3\"") || svg.contains("y1=\"3\""), "{svg}");
        assert!(svg.contains("25"), "{svg}");
    }

    #[test]
    fn custom_color_and_dark_theme() {
        let cfg = SparklineConfig {
            color: Some("#d95926"),
            theme: crate::theme::DARK,
            ..Default::default()
        };
        let svg = sparkline_svg(&[1.0, 2.0], &cfg).render();
        assert!(svg.contains("#d95926"));
        assert!(svg.contains("#1a1a19"));
    }
}
