//! Bar charts: the MCAC bar-chart baseline (Fig. 5.3) and the grouped bar
//! charts of the evaluation figures (Fig. 5.1's rule-space reduction and
//! Fig. 5.2's user-study accuracy).
//!
//! Mark rules from the data-viz method: thin bars with 4px rounded
//! data-ends anchored to the baseline, ≥2px surface gaps between adjacent
//! fills, one axis, recessive grid, text in ink tokens, a legend for ≥2
//! series plus selective direct labels (never a number on every mark).

use crate::color;
use crate::svg::SvgDoc;
use crate::theme::Theme;
use maras_mcac::Mcac;
use maras_rules::DrugAdrRule;

/// One x-axis group of a grouped bar chart.
#[derive(Debug, Clone)]
pub struct BarGroup {
    /// Group label (e.g. "Q1").
    pub label: String,
    /// One value per series.
    pub values: Vec<f64>,
}

/// Configuration for [`grouped_bars`].
#[derive(Debug, Clone)]
pub struct GroupedBarConfig {
    /// Chart title.
    pub title: String,
    /// Series names (legend entries); must match `BarGroup::values` length.
    pub series: Vec<String>,
    /// One fill per series.
    pub colors: Vec<&'static str>,
    /// Log₁₀ y-axis (Fig. 5.1 style); values must be ≥ 0 and are plotted as
    /// `log10(max(v, 1))`.
    pub log10: bool,
    /// Render values as percentages (Fig. 5.2 style, 0–100 axis).
    pub percent: bool,
    /// Canvas size.
    pub width: f64,
    /// Canvas height.
    pub height: f64,
    /// Color theme.
    pub theme: Theme,
}

impl Default for GroupedBarConfig {
    fn default() -> Self {
        GroupedBarConfig {
            title: String::new(),
            series: Vec::new(),
            colors: vec![color::SERIES_BLUE, color::SERIES_AQUA, color::TARGET],
            log10: false,
            percent: false,
            width: 560.0,
            height: 360.0,
            theme: Theme::default(),
        }
    }
}

const MARGIN_LEFT: f64 = 56.0;
const MARGIN_RIGHT: f64 = 16.0;
const MARGIN_TOP: f64 = 48.0;
const MARGIN_BOTTOM: f64 = 36.0;

/// Renders a grouped bar chart.
///
/// # Panics
/// Panics if groups disagree on series count or the config lacks colors.
pub fn grouped_bars(groups: &[BarGroup], config: &GroupedBarConfig) -> SvgDoc {
    let n_series = config.series.len();
    assert!(n_series >= 1, "at least one series");
    assert!(config.colors.len() >= n_series, "one color per series");
    for g in groups {
        assert_eq!(g.values.len(), n_series, "group {} series mismatch", g.label);
    }

    let theme = config.theme;
    let mut doc = SvgDoc::new(config.width, config.height, theme.surface);
    let plot_w = config.width - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = config.height - MARGIN_TOP - MARGIN_BOTTOM;
    let x0 = MARGIN_LEFT;
    let y0 = MARGIN_TOP;
    let baseline = y0 + plot_h;

    // Scale.
    let transform = |v: f64| -> f64 {
        if config.log10 {
            v.max(1.0).log10()
        } else {
            v
        }
    };
    let raw_max = groups.iter().flat_map(|g| g.values.iter().copied()).fold(0.0f64, f64::max);
    let y_max = if config.percent {
        100.0
    } else if config.log10 {
        transform(raw_max).ceil().max(1.0)
    } else {
        nice_ceiling(raw_max)
    };
    let y_of = |v: f64| baseline - (transform(v) / y_max).clamp(0.0, 1.0) * plot_h;

    // Title + legend (legend is mandatory at ≥2 series).
    doc.text(x0, 20.0, &config.title, 13.0, theme.text_primary, "start", true);
    if n_series >= 2 {
        let mut lx = x0;
        let ly = 34.0;
        for (i, name) in config.series.iter().enumerate() {
            doc.rect(lx, ly - 8.0, 10.0, 10.0, config.colors[i]);
            doc.text(lx + 14.0, ly, name, 10.0, theme.text_secondary, "start", false);
            lx += 14.0 + 7.0 * name.len() as f64 + 18.0;
        }
    }

    // Grid + y labels.
    let n_ticks = if config.log10 { y_max as usize } else { 4 };
    for t in 0..=n_ticks {
        let frac = t as f64 / n_ticks as f64;
        let y = baseline - frac * plot_h;
        doc.line(x0, y, x0 + plot_w, y, theme.grid, 1.0);
        let label = if config.log10 {
            format!("1E+{:02}", (frac * y_max).round() as u32)
        } else if config.percent {
            format!("{}%", (frac * y_max).round() as u32)
        } else {
            format!("{}", (frac * y_max).round() as u64)
        };
        doc.text(x0 - 6.0, y + 3.0, &label, 9.0, theme.text_secondary, "end", false);
    }

    // Bars.
    let group_w = plot_w / groups.len().max(1) as f64;
    let gap = 2.0;
    let bar_w = ((group_w * 0.72) / n_series as f64 - gap).max(3.0);
    for (gi, g) in groups.iter().enumerate() {
        let gx = x0 + gi as f64 * group_w + group_w * 0.14;
        for (si, &v) in g.values.iter().enumerate() {
            let bx = gx + si as f64 * (bar_w + gap);
            let by = y_of(v);
            let h = baseline - by;
            if h > 0.0 {
                let title = format!("{} · {}: {}", g.label, config.series[si], format_value(v));
                doc.bar_rounded_top(bx, by, bar_w, h, 4.0, config.colors[si], Some(&title));
            }
        }
        doc.text(
            gx + (bar_w + gap) * n_series as f64 / 2.0,
            baseline + 16.0,
            &g.label,
            10.0,
            theme.text_secondary,
            "middle",
            false,
        );
    }
    // Baseline axis on top of bars.
    doc.line(x0, baseline, x0 + plot_w, baseline, theme.text_secondary, 1.0);
    doc
}

fn nice_ceiling(v: f64) -> f64 {
    if v <= 0.0 {
        return 1.0;
    }
    let mag = 10f64.powf(v.log10().floor());
    let n = v / mag;
    let nice = if n <= 1.0 {
        1.0
    } else if n <= 2.0 {
        2.0
    } else if n <= 5.0 {
        5.0
    } else {
        10.0
    };
    nice * mag
}

fn format_value(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.0}", v)
    } else if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        format!("{v:.2}")
    }
}

/// The Fig. 5.3 baseline visualization: one MCAC as a bar chart — target
/// rule first (orange), then every contextual rule (blue ramp by
/// cardinality), confidence on the y-axis.
pub fn mcac_barchart(
    cluster: &Mcac,
    title: &str,
    namer: Option<&dyn Fn(&DrugAdrRule) -> String>,
) -> SvgDoc {
    mcac_barchart_themed(cluster, title, namer, Theme::default())
}

/// [`mcac_barchart`] with an explicit theme.
pub fn mcac_barchart_themed(
    cluster: &Mcac,
    title: &str,
    namer: Option<&dyn Fn(&DrugAdrRule) -> String>,
    theme: Theme,
) -> SvgDoc {
    let n_bars = 1 + cluster.context_size();
    let width = (n_bars as f64 * 34.0 + MARGIN_LEFT + MARGIN_RIGHT).max(320.0);
    let height = 300.0;
    let mut doc = SvgDoc::new(width, height, theme.surface);
    let plot_w = width - MARGIN_LEFT - MARGIN_RIGHT;
    let plot_h = height - MARGIN_TOP - MARGIN_BOTTOM;
    let baseline = MARGIN_TOP + plot_h;
    let describe = |rule: &DrugAdrRule| -> String {
        match namer {
            Some(f) => f(rule),
            None => rule.to_string(),
        }
    };

    doc.text(MARGIN_LEFT, 20.0, title, 13.0, theme.text_primary, "start", true);
    // y grid: confidence 0..1.
    for t in 0..=4 {
        let frac = t as f64 / 4.0;
        let y = baseline - frac * plot_h;
        doc.line(MARGIN_LEFT, y, MARGIN_LEFT + plot_w, y, theme.grid, 1.0);
        doc.text(
            MARGIN_LEFT - 6.0,
            y + 3.0,
            &format!("{frac:.2}"),
            9.0,
            theme.text_secondary,
            "end",
            false,
        );
    }

    let bar_w = (plot_w / n_bars as f64 - 2.0).clamp(4.0, 28.0);
    let step = plot_w / n_bars as f64;
    let n_levels = cluster.levels.len();
    let mut x = MARGIN_LEFT + (step - bar_w) / 2.0;

    // Target bar (direct label: the headline number).
    let p = cluster.target.confidence().clamp(0.0, 1.0);
    let h = p * plot_h;
    doc.bar_rounded_top(
        x,
        baseline - h,
        bar_w,
        h,
        4.0,
        theme.target,
        Some(&format!("target: {} (conf {:.2})", describe(&cluster.target), p)),
    );
    doc.text(
        x + bar_w / 2.0,
        baseline - h - 4.0,
        &format!("{p:.2}"),
        9.0,
        theme.text_primary,
        "middle",
        true,
    );
    doc.text(x + bar_w / 2.0, baseline + 14.0, "R", 9.0, theme.text_secondary, "middle", true);
    x += step;

    for (level_index, level) in cluster.levels.iter().enumerate() {
        for (ri, rule) in level.rules.iter().enumerate() {
            let c = rule.confidence().clamp(0.0, 1.0);
            let h = (c * plot_h).max(1.0);
            let fill = theme.level_color(level_index, n_levels);
            doc.bar_rounded_top(
                x,
                baseline - h,
                bar_w,
                h,
                4.0,
                fill,
                Some(&format!("{} (conf {:.2})", describe(rule), c)),
            );
            doc.text(
                x + bar_w / 2.0,
                baseline + 14.0,
                &format!("R{}{}", level.cardinality, (b'a' + ri as u8) as char),
                9.0,
                theme.text_secondary,
                "middle",
                false,
            );
            x += step;
        }
    }
    doc.line(MARGIN_LEFT, baseline, MARGIN_LEFT + plot_w, baseline, theme.text_secondary, 1.0);
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use maras_mining::{Item, ItemSet, TransactionDb};

    fn sample_cluster() -> Mcac {
        let db = TransactionDb::new(vec![
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(1), Item(10)],
            vec![Item(0), Item(2)],
            vec![Item(1), Item(10)],
        ]);
        let t =
            DrugAdrRule::from_parts(ItemSet::from_ids([0u32, 1]), ItemSet::from_ids([10u32]), &db);
        Mcac::build(t, &db)
    }

    #[test]
    fn grouped_bars_renders_all_groups_and_legend() {
        let groups = vec![
            BarGroup { label: "Q1".into(), values: vec![1.0e6, 2.0e5, 4.0e3] },
            BarGroup { label: "Q2".into(), values: vec![1.2e6, 2.4e5, 4.4e3] },
        ];
        let cfg = GroupedBarConfig {
            title: "Reduction in number of rules".into(),
            series: vec!["Total Rules".into(), "Filtered Rules".into(), "MCACs".into()],
            log10: true,
            ..Default::default()
        };
        let svg = grouped_bars(&groups, &cfg).render();
        assert!(svg.contains("Q1") && svg.contains("Q2"));
        assert!(svg.contains("Total Rules"));
        assert!(svg.contains("1E+0"));
        assert!(svg.matches("<path").count() >= 6, "six bars expected");
    }

    #[test]
    fn percent_mode_axis() {
        let groups = vec![BarGroup { label: "Two".into(), values: vec![71.0, 47.0] }];
        let cfg = GroupedBarConfig {
            title: "User study".into(),
            series: vec!["Contextual Glyph".into(), "Barchart".into()],
            percent: true,
            ..Default::default()
        };
        let svg = grouped_bars(&groups, &cfg).render();
        assert!(svg.contains("100%"));
        assert!(svg.contains("0%"));
    }

    #[test]
    #[should_panic(expected = "series mismatch")]
    fn mismatched_group_panics() {
        let groups = vec![BarGroup { label: "A".into(), values: vec![1.0] }];
        let cfg = GroupedBarConfig { series: vec!["s1".into(), "s2".into()], ..Default::default() };
        grouped_bars(&groups, &cfg);
    }

    #[test]
    fn mcac_barchart_has_one_bar_per_rule() {
        let c = sample_cluster();
        let svg = mcac_barchart(&c, "MCAC", None).render();
        // 1 target + 2 context bars.
        assert_eq!(svg.matches("<path").count(), 3, "{svg}");
        assert!(svg.contains("R1a"));
        assert!(svg.contains("R1b"));
        assert!(svg.contains(crate::theme::LIGHT.target));
    }

    #[test]
    fn zero_valued_bars_are_skipped_in_grouped_chart() {
        let groups = vec![BarGroup { label: "A".into(), values: vec![0.0, 5.0] }];
        let cfg = GroupedBarConfig { series: vec!["x".into(), "y".into()], ..Default::default() };
        let svg = grouped_bars(&groups, &cfg).render();
        assert_eq!(svg.matches("<path").count(), 1);
    }

    #[test]
    fn nice_ceiling_values() {
        assert_eq!(nice_ceiling(0.0), 1.0);
        assert_eq!(nice_ceiling(0.7), 1.0);
        assert_eq!(nice_ceiling(1.4), 2.0);
        assert_eq!(nice_ceiling(4.2), 5.0);
        assert_eq!(nice_ceiling(70.0), 100.0);
        assert_eq!(nice_ceiling(100.0), 100.0);
    }
}
