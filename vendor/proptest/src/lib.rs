//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and the `proptest!` family of macros
//! used by this workspace, backed by the vendored deterministic `rand`.
//! Differences from the real crate: no shrinking (a failure reports the
//! case seed instead of a minimal counterexample), regex strategies cover
//! only the single-character-class `[...]{m,n}` subset the tests use, and
//! the default case count is 64.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use rand::prelude::*;

    /// Deterministic RNG threaded through value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Produces one value from the RNG.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy it induces.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between alternatives (backs `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.arms[rng.gen_range(0..self.arms.len())].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// Regex-subset strategy: a single character class with a repeat
    /// count, e.g. `"[ A-Za-z0-9$-]{1,18}"` or `"[^\n]{0,40}"`.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self);
            let len = rng.gen_range(lo..=hi);
            (0..len).map(|_| *alphabet.choose(rng).expect("non-empty class")).collect()
        }
    }

    fn unsupported(pattern: &str) -> ! {
        panic!("unsupported regex strategy {pattern:?} (shim handles [class]{{m,n}})")
    }

    /// Parses `[class]{m}` / `[class]{m,n}` (count defaults to `{1}`)
    /// into (alphabet, min_len, max_len). Panics on anything else: the
    /// vendored shim supports exactly the patterns this workspace uses.
    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let mut chars = pattern.chars().peekable();
        if chars.next() != Some('[') {
            unsupported(pattern);
        }
        let negated = chars.peek() == Some(&'^');
        if negated {
            chars.next();
        }
        let mut members: Vec<char> = Vec::new();
        loop {
            let c = match chars.next() {
                None => unsupported(pattern),
                Some(']') => break,
                Some('\\') => match chars.next() {
                    Some('n') => '\n',
                    Some('r') => '\r',
                    Some('t') => '\t',
                    Some(c @ ('\\' | ']' | '-' | '^' | '$')) => c,
                    _ => unsupported(pattern),
                },
                Some(c) => c,
            };
            // `a-z` range, unless '-' is the last char before ']'.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                if ahead.peek() != Some(&']') {
                    chars.next();
                    let end = match chars.next() {
                        Some(']') | None => unsupported(pattern),
                        Some(e) => e,
                    };
                    for code in (c as u32)..=(end as u32) {
                        members.push(char::from_u32(code).unwrap_or_else(|| unsupported(pattern)));
                    }
                    continue;
                }
            }
            members.push(c);
        }
        let alphabet: Vec<char> = if negated {
            (0x20u8..0x7f).map(char::from).filter(|c| !members.contains(c)).collect()
        } else {
            members
        };
        if alphabet.is_empty() {
            unsupported(pattern);
        }
        let (lo, hi) = match chars.next() {
            None => (1, 1),
            Some('{') => {
                let counts: String = chars.by_ref().take_while(|&c| c != '}').collect();
                let mut parts = counts.splitn(2, ',');
                let lo: usize = parts
                    .next()
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_else(|| unsupported(pattern));
                let hi = match parts.next() {
                    None => lo,
                    Some(p) => p.parse().ok().unwrap_or_else(|| unsupported(pattern)),
                };
                if chars.next().is_some() {
                    unsupported(pattern);
                }
                (lo, hi)
            }
            Some(_) => unsupported(pattern),
        };
        (alphabet, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

    /// A vector of strategies generates element-wise (used with
    /// `prop_flat_map` to build variable shapes).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }
}

pub mod collection {
    //! Sized-collection strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;
    use std::collections::BTreeSet;

    /// `Vec` strategy with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `size` (half-open, like the
    /// real crate's `SizeRange` from a `Range`).
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with a target size drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates ordered sets; duplicates are redrawn, so narrow element
    /// domains may yield fewer than the drawn target size.
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 10 + 100 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<T>`: `None` about a quarter of the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps a strategy to sometimes yield `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod num {
    //! Whole-domain numeric strategies.

    macro_rules! any_int {
        ($($m:ident: $t:ty),*) => {$(
            /// Strategies for this integer type.
            pub mod $m {
                /// The full domain of the type.
                pub const ANY: core::ops::RangeInclusive<$t> = <$t>::MIN..=<$t>::MAX;
            }
        )*};
    }

    any_int!(u8: u8, u16: u16, u32: u32, i8: i8, i16: i16, i32: i32);
}

pub mod test_runner {
    //! Case execution: configuration, failure kinds, and the driver loop
    //! that `proptest!` expands to.

    use super::strategy::TestRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honoured by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the case (and test) fails.
        Fail(String),
        /// `prop_assume!` filtered the inputs; the case is retried.
        Reject,
    }

    /// Result of one property-test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Derives the per-case seed from the test name and attempt index.
    /// Deterministic across runs, so failures reproduce; distinct per
    /// test, so sibling properties see different data.
    fn case_seed(name: &str, attempt: u64) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h ^ attempt).wrapping_mul(0x0000_0100_0000_01b3)
    }

    /// Drives one property: runs `case` until `config.cases` successes,
    /// retrying rejected cases, panicking on the first failure with the
    /// seed that reproduces it.
    pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let max_rejects = config.cases as u64 * 16 + 256;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let seed = case_seed(name, attempt);
            attempt += 1;
            let mut rng = TestRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "property {name}: too many prop_assume! rejections ({rejects})"
                    );
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!("property {name} failed (case seed {seed:#018x}): {message}")
                }
            }
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use rand::prelude::*;
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}` {}",
                            l, r, format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "assertion failed: `left != right`\n  both: `{:?}` {}",
                            l, format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (it is redrawn) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that draws inputs and checks the body over many
/// seeded cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($cfg, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                let mut case = move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                };
                case()
            });
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::TestRng;

    #[test]
    fn regex_subset_generates_within_class() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[ A-Za-z0-9$-]{1,18}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 18);
            assert!(s
                .chars()
                .all(|c| c == ' ' || c == '$' || c == '-' || c.is_ascii_alphanumeric()));
            let g = Strategy::generate(&"[^\n]{0,40}", &mut rng);
            assert!(!g.contains('\n') && g.len() <= 40);
            let two = Strategy::generate(&"[A-Z]{2}", &mut rng);
            assert_eq!(two.len(), 2);
            assert!(two.chars().all(|c| c.is_ascii_uppercase()));
        }
    }

    #[test]
    fn union_and_collections_cover_their_domains() {
        let mut rng = TestRng::seed_from_u64(11);
        let s = prop_oneof![0u32..5, 10u32..13];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((0..5).contains(&v) || (10..13).contains(&v));
            seen.insert(v);
        }
        assert!(seen.len() >= 7, "poor coverage: {seen:?}");

        let vs = crate::collection::vec(0u8..4, 1..5);
        for _ in 0..100 {
            let v = vs.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
        let bs = crate::collection::btree_set("[A-Z]{1,6}", 1..30);
        let set = bs.generate(&mut rng);
        assert!(!set.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_wires_args_and_assertions(
            x in 1u64..100,
            pair in (0.0f64..1.0, proptest::option::of(0u8..4)),
            items in proptest::collection::vec(0u32..10, 0..6),
        ) {
            prop_assert!(x >= 1 && x < 100);
            prop_assert!((0.0..1.0).contains(&pair.0));
            prop_assert_eq!(items.len(), items.len());
            prop_assert_ne!(x, 0, "x must stay positive, got {}", x);
            prop_assume!(x != 55);
            prop_assert_ne!(x, 55);
        }

        #[test]
        fn flat_map_threads_intermediate_values(
            v in (1usize..6).prop_flat_map(|n| {
                (0..n).map(|_| 0u32..7).collect::<Vec<_>>()
            })
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 7));
        }
    }

    use crate as proptest;
}
