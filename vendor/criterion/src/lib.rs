//! Offline stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench targets compiling
//! and runnable without the real crate: each benchmark is timed with
//! `std::time::Instant` over a fixed number of samples and the median
//! per-iteration time is printed. No statistics, plots, or baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifies a benchmark within a group, e.g. `fpgrowth/4`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds of the last `iter` call.
    last_ns: f64,
}

impl Bencher {
    /// Times `routine`, keeping the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup pass, then time each sample individually.
        black_box(routine());
        let mut samples_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed().as_nanos() as f64
            })
            .collect();
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        self.last_ns = samples_ns[samples_ns.len() / 2];
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { samples, last_ns: 0.0 };
    f(&mut bencher);
    println!("bench: {:<44} time: {}", label, human(bencher.last_ns));
}

/// Entry point handed to benchmark functions.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&id.to_string(), self.samples, &mut f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), samples: self.samples }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("fpgrowth", 4).to_string(), "fpgrowth/4");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn bencher_measures_and_groups_run() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            ran += 1;
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert_eq!(ran, 1);
    }
}
