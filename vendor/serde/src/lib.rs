//! Offline stand-in for `serde`.
//!
//! Exposes [`Serialize`] / [`Deserialize`] as blanket-implemented marker
//! traits and re-exports the no-op derives from the vendored
//! `serde_derive`, so `use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged. Actual JSON
//! encoding in this workspace goes through `serde_json::Value` builders.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
