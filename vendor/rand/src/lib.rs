//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! crates.io is unreachable in this build environment, so the workspace
//! vendors exactly the surface it uses: a deterministic seeded [`StdRng`]
//! (xoshiro256**), [`Rng::gen_range`] over integer and float ranges,
//! [`Rng::gen_bool`], and slice [`seq::SliceRandom::choose`] /
//! [`seq::SliceRandom::shuffle`]. Streams differ from the real `rand`
//! crate, but everything downstream only requires determinism in the seed,
//! not a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range (`a..b` or `a..=b`, integer or float).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
pub(crate) fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types [`Rng::gen_range`] can sample uniformly.
///
/// Implemented generically for ranges (`impl<T: SampleUniform>
/// SampleRange<T> for Range<T>`) exactly so integer-literal inference
/// behaves like the real crate: `b'A' + rng.gen_range(0..26)` unifies
/// the literal with `u8` through the range's element type.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[start, end)` (or `[start, end]` when
    /// `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        start: Self,
        end: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(*self.start(), *self.end(), true, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty => $unsigned:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (end as $unsigned).wrapping_sub(start as $unsigned);
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                    if span as u64 == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    let draw = (rng.next_u64() % (span as u64 + 1)) as $unsigned;
                    start.wrapping_add(draw as $t)
                } else {
                    assert!(start < end, "cannot sample empty range");
                    let draw = (rng.next_u64() % span as u64) as $unsigned;
                    start.wrapping_add(draw as $t)
                }
            }
        }
    )*};
}

int_uniform!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => u64,
);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                start: Self,
                end: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                } else {
                    assert!(start < end, "cannot sample empty range");
                }
                let unit = unit_f64(rng.next_u64()) as $t;
                start + (end - start) * unit
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. (The real `rand::rngs::StdRng` is a
    /// ChaCha block cipher; callers here only rely on seed-determinism.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per Vigna's reference implementation.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The traits and types most callers want in scope.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0..=4usize);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let b = rng.gen_range(0u8..26);
            assert!(b < 26);
        }
    }

    #[test]
    fn gen_range_covers_the_support() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(4);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(items.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());

        let mut v: Vec<u32> = (0..20).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "20 elements virtually never shuffle to identity");
    }
}
