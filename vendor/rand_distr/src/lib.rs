//! Offline stand-in for the `rand_distr` crate (0.4 API subset).
//!
//! Implements the two distributions the workspace samples — [`Normal`]
//! (Box–Muller) and [`Zipf`] (inverse-CDF over a precomputed table) — on
//! top of the vendored `rand` shim.

#![warn(missing_docs)]

use rand::RngCore;
use std::fmt;

/// Types that can be sampled from with an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// The normal (Gaussian) distribution `N(mean, std_dev²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Float types [`Normal`] is defined over. A single generic `impl` keeps
/// `Normal::new(58.0f32, 18.0)` inferable, as with the real crate.
pub trait NormalFloat: Copy {
    /// Converts from an `f64` intermediate.
    fn from_f64(x: f64) -> Self;
    /// Converts to an `f64` intermediate.
    fn to_f64(self) -> f64;
}

impl NormalFloat for f32 {
    fn from_f64(x: f64) -> Self {
        x as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

impl NormalFloat for f64 {
    fn from_f64(x: f64) -> Self {
        x
    }
    fn to_f64(self) -> f64 {
        self
    }
}

impl<F: NormalFloat> Normal<F> {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: F, std_dev: F) -> Result<Self, ParamError> {
        let sd = std_dev.to_f64();
        // NaN fails is_finite(), so `sd < 0.0` alone is a complete check.
        if sd < 0.0 || !sd.is_finite() {
            return Err(ParamError("std_dev must be finite and >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: NormalFloat> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal(rng))
    }
}

/// One standard-normal draw via Box–Muller (the cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1 = 1.0 - unit(rng.next_u64());
    let u2 = unit(rng.next_u64());
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[inline]
fn unit(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The Zipf distribution over `{1, …, n}` with exponent `s`:
/// `P(k) ∝ 1 / k^s`. Samples are returned as floats, matching `rand_distr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf<F> {
    /// Cumulative probabilities for k = 1..=n.
    cdf: Vec<f64>,
    _marker: std::marker::PhantomData<F>,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution; `n ≥ 1` and `s` finite and positive.
    pub fn new(n: u64, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("zipf n must be >= 1"));
        }
        if !s.is_finite() || s <= 0.0 {
            return Err(ParamError("zipf exponent must be finite and > 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Ok(Zipf { cdf, _marker: std::marker::PhantomData })
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = unit(rng.next_u64());
        let idx = self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1);
        (idx + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn normal_moments_are_roughly_right() {
        let dist = Normal::new(10.0f64, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn normal_rejects_negative_std_dev() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Normal::new(0.0f64, f64::NAN).is_err());
    }

    #[test]
    fn zipf_favors_small_ranks() {
        let dist = Zipf::new(100, 1.05).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 100];
        for _ in 0..20_000 {
            let k = dist.sample(&mut rng);
            assert!((1.0..=100.0).contains(&k));
            counts[k as usize - 1] += 1;
        }
        assert!(counts[0] > counts[9], "rank 1 should beat rank 10");
        assert!(counts[0] > 20_000 / 25, "rank 1 should be common: {}", counts[0]);
    }

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, 0.0).is_err());
    }
}
