//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny API surface it uses: [`FxHasher`] (the classic
//! multiply-xor mixing function used by rustc), plus the `FxHashMap` /
//! `FxHashSet` aliases. Not DoS-resistant; exactly like the real crate.

#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasherDefault` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher (the rustc "Fx" function).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_ne_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<String> = FxHashSet::default();
        assert!(s.insert("a".to_string()));
        assert!(!s.insert("a".to_string()));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"hello world");
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
