//! Offline stand-in for `serde_json`.
//!
//! Implements the surface this workspace uses without the real serde data
//! model: a [`Value`] tree with `From` conversions and [`Value::obj`] /
//! [`Value::arr`] builders (replacing `#[derive(Serialize)]` codegen), a
//! strict JSON parser ([`from_str`]), compact `Display`, and
//! [`to_string_pretty`].

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

/// Object representation (sorted keys, like a canonical dump).
pub type Map = BTreeMap<String, Value>;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, I: IntoIterator<Item = (K, Value)>>(pairs: I) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr<I: IntoIterator<Item = Value>>(items: I) -> Value {
        Value::Array(items.into_iter().collect())
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(n) =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
    )*};
}

from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

/// A JSON syntax error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input where it went wrong.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not reconstructed; real
                            // FAERS text is ASCII, so map lone surrogates
                            // to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("bad number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None);
        f.write_str(&out)
    }
}

/// Compact rendering of a value.
pub fn to_string(value: &Value) -> Result<String, Error> {
    Ok(value.to_string())
}

/// Two-space-indented rendering of a value.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, value, Some(0));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj([
            ("name", Value::from("IBU\"PROFEN\n")),
            ("rank", Value::from(1)),
            ("score", Value::from(0.25)),
            ("tags", Value::arr([Value::from("a"), Value::Null, Value::from(true)])),
            ("empty", Value::arr([])),
        ]);
        for text in [v.to_string(), to_string_pretty(&v).unwrap()] {
            assert_eq!(from_str(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = from_str(r#" {"a": [1, 2.5, -3e2], "b": {"c": null}, "d": "x\u0041"} "#).unwrap();
        assert_eq!(v["a"][0], 1);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][2], -300.0);
        assert!(v["b"]["c"].is_null());
        assert_eq!(v["d"], "xA");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Value::from(5u64).to_string(), "5");
        assert_eq!(Value::from(-5i32).to_string(), "-5");
        assert_eq!(Value::from(0.5f64).to_string(), "0.5");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn comparisons_against_primitives() {
        let v = from_str(r#"{"rank": 1, "on": true, "s": "hi"}"#).unwrap();
        assert_eq!(v["rank"], 1);
        assert_eq!(v["rank"], 1u64);
        assert_eq!(v["on"], true);
        assert_eq!(v["s"], "hi");
        assert_eq!(v["rank"].as_u64(), Some(1));
        assert_eq!(v["rank"].as_i64(), Some(1));
    }
}
