//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types as
//! documentation of intent, but nothing in the offline build consumes the
//! generated impls — JSON output goes through the hand-rolled
//! `serde_json::Value` builder instead. These derives therefore expand to
//! nothing; the `serde` shim's blanket trait impls keep any bounds
//! satisfied. Swapping the workspace dependency back to the real serde
//! restores full codegen without touching call sites.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
