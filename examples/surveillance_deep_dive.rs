//! Deep-dive surveillance workflow: the analyses a safety evaluator runs
//! *after* MARAS surfaces a signal —
//!
//! 1. **trend** — does the signal persist / grow across the year's quarters?
//! 2. **stratification** — does it survive Mantel–Haenszel age/sex
//!    adjustment, or was it demographic confounding?
//! 3. **class rollup** — what does the interaction look like at ATC-class ×
//!    organ-class level (the Tatonetti-style view)?
//!
//! ```sh
//! cargo run --release --example surveillance_deep_dive
//! ```

use maras::core::KnowledgeBase;
use maras::core::{
    rollup_reports, stratified_tables, Pipeline, PipelineConfig, Rollup, Stratifier, TrendTracker,
};
use maras::faers::{AtcIndex, SocIndex, SynthConfig, Synthesizer};
use maras::report::{html_report_with_trends, ReportConfig};
use maras::rules::multi_drug_rules;
use maras::signals::{mantel_haenszel_or, ContingencyTable, SignalScores};

fn main() {
    let mut synth = Synthesizer::new(SynthConfig::default());
    let (dv, av) = (synth.drug_vocab().clone(), synth.adr_vocab().clone());
    let pipeline = Pipeline::new(PipelineConfig::default().with_min_support(8));

    // ---- 1. trend across the year --------------------------------------
    let mut tracker = TrendTracker::new();
    let mut last_result = None;
    for quarter in synth.generate_year(2014) {
        let id = quarter.id;
        let result = pipeline.run(quarter, &dv, &av);
        tracker.ingest(id, &result);
        last_result = Some(result);
    }
    let result = last_result.expect("four quarters analyzed");

    println!("=== persistent signals (present in all 4 quarters), best first ===");
    let mut shown = 0;
    for trend in tracker.trends() {
        if !trend.is_persistent() {
            continue;
        }
        let drugs: Vec<String> = result.encoded.names(&trend.drugs, &dv, &av);
        let supports: Vec<String> = trend.points.iter().map(|p| p.support.to_string()).collect();
        println!(
            "  [{}] mean score {:.3} · support by quarter: {}",
            drugs.join(" + "),
            trend.mean_score(),
            supports.join(" -> ")
        );
        shown += 1;
        if shown == 5 {
            break;
        }
    }
    let emerging = tracker.emerging(2);
    println!("\n{} signals have strictly growing support (emerging shortlist)", emerging.len());

    // ---- 2. stratified confirmation of the top signal -------------------
    let top = result.ranked[0].cluster.target.clone();
    let names = result.encoded.names(&top.drugs, &dv, &av);
    println!("\n=== stratified analysis of the Q4 top signal [{}] ===", names.join(" + "));
    let crude = SignalScores::from_table(ContingencyTable::from_db(
        &result.encoded.db,
        &top.drugs,
        &top.adrs,
    ));
    for stratifier in [Stratifier::AgeBand, Stratifier::Sex] {
        let tables = stratified_tables(&result, &top, stratifier);
        let adjusted = mantel_haenszel_or(&tables);
        println!(
            "  {:?}: crude ROR {:.1} -> MH-adjusted OR {:.1}  ({})",
            stratifier,
            crude.ror.estimate,
            adjusted,
            if adjusted > 2.0 { "signal survives adjustment" } else { "possible confounding" }
        );
        for (i, t) in tables.iter().enumerate() {
            if t.a > 0 {
                println!(
                    "      stratum {:<10} exposed+event={:<4} exposed={:<5} n={}",
                    stratifier.label(i),
                    t.a,
                    t.exposed(),
                    t.n()
                );
            }
        }
    }

    // ---- 3. class-level view --------------------------------------------
    println!("\n=== ATC-class x organ-class rollup (Tatonetti-style) ===");
    let atc = AtcIndex::build(&dv);
    let soc = SocIndex::build(&av);
    let rolled =
        rollup_reports(&result.cleaned, &atc, &soc, dv.len() as u32, av.len() as u32, Rollup::Both);
    let class_rules = multi_drug_rules(&rolled.db, &rolled.partition, 25);
    // (HTML report with trend sparklines is written at the end.)
    println!(
        "{} class-level multi-class rules at support >= 25; strongest five by lift:",
        class_rules.len()
    );
    let mut by_lift = class_rules;
    by_lift.sort_by(|a, b| b.lift().partial_cmp(&a.lift()).unwrap_or(std::cmp::Ordering::Equal));
    for rule in by_lift.iter().take(5) {
        let parts: Vec<String> = rule
            .drugs
            .iter()
            .chain(rule.adrs.iter())
            .map(|i| rolled.item_name(i, &dv, &av))
            .collect();
        println!("  {} (sup={}, lift={:.1})", parts.join(" | "), rule.support(), rule.lift());
    }

    // ---- 4. the deliverable: an HTML report with trend sparklines --------
    let kb = KnowledgeBase::literature_validated();
    let html = html_report_with_trends(
        &result,
        &dv,
        &av,
        &kb,
        &ReportConfig {
            title: "MARAS 2014 full-year review (Q4 ranking)".into(),
            ..Default::default()
        },
        Some(&tracker),
    );
    std::fs::create_dir_all("target/gallery").expect("mkdir");
    std::fs::write("target/gallery/year_report.html", html).expect("write report");
    println!("\nwrote target/gallery/year_report.html (open in a browser)");
}
