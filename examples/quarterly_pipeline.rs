//! Quarterly surveillance pipeline over on-disk FAERS ASCII files — the
//! production shape of the system: write a year of quarterly extracts in
//! the real FAERS `$`-delimited exchange format, read them back, run MARAS
//! on every quarter, and track how a signal evolves across the year.
//!
//! ```sh
//! cargo run --release --example quarterly_pipeline
//! ```

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::ascii::{read_quarter_dir, write_quarter_dir};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("maras_faers_2014");

    // --- ingest side: a year of quarterly extracts on disk ---------------
    let mut synth = Synthesizer::new(SynthConfig::default());
    let (dv, av) = (synth.drug_vocab().clone(), synth.adr_vocab().clone());
    for quarter in synth.generate_year(2014) {
        write_quarter_dir(&dir, &quarter)?;
    }
    println!("wrote quarterly ASCII extracts (DEMO/DRUG/REAC/OUTC) to {}\n", dir.display());

    // --- analysis side: read each quarter back and run MARAS -------------
    let pipeline = Pipeline::new(PipelineConfig::default().with_min_support(8));
    let tracked = (&["METHOTREXATE", "PROGRAF"][..], &["Drug ineffective"][..]);

    println!(
        "{:<8} {:>9} {:>9} {:>7} {:>16} {:>10}",
        "quarter", "reports", "cleaned", "MCACs", "tracked-signal", "score"
    );
    for q in 1..=4u8 {
        let id = QuarterId::new(2014, q);
        let quarter = read_quarter_dir(&dir, id)?;
        let result = pipeline.run(quarter, &dv, &av);
        let (rank, score) = match result.rank_of(tracked.0, tracked.1, &dv, &av) {
            Some(r) => (format!("rank {}", r + 1), format!("{:.3}", result.ranked[r].score)),
            None => ("below support".into(), "-".into()),
        };
        println!(
            "{:<8} {:>9} {:>9} {:>7} {:>16} {:>10}",
            id.to_string(),
            result.quarter.reports.len(),
            result.cleaned.len(),
            result.counts.mcacs,
            rank,
            score
        );
    }
    println!(
        "\ntracking {:?} => {:?}: a persistent high rank across quarters is the\n\
         reinforcement signal a safety evaluator escalates on",
        tracked.0, tracked.1
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
