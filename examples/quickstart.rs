//! Quickstart: mine drug-drug-interaction signals from one quarter of
//! (synthetic) FAERS data, end to end, in ~30 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};

fn main() {
    // 1. A quarter of adverse-event reports. `Synthesizer` stands in for
    //    the real FAERS quarterly extract (same structure: verbatim drug
    //    strings with typos, MedDRA-style reaction terms, outcomes) and
    //    plants the interactions the MARAS thesis validates, so the demo
    //    has known ground truth.
    let mut synth = Synthesizer::new(SynthConfig::default());
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    println!(
        "generated {} reports ({} verbatim drug strings, {} ADR terms)",
        quarter.reports.len(),
        quarter.stats().distinct_drugs,
        quarter.stats().distinct_adrs
    );

    // 2. Run the MARAS pipeline: select expedited reports, clean &
    //    deduplicate, mine closed drug→ADR associations, build multi-level
    //    contextual clusters, rank by exclusiveness.
    let pipeline = Pipeline::new(PipelineConfig::default().with_min_support(8));
    let result = pipeline.run(quarter, synth.drug_vocab(), synth.adr_vocab());

    println!(
        "\nrule funnel: {} total splits -> {} drug->ADR rules -> {} multi-drug MCACs\n",
        result.counts.total_rules, result.counts.filtered_rules, result.counts.mcacs
    );

    // 3. The top-ranked drug-drug-interaction signals.
    println!("top 10 signals by exclusiveness:");
    for view in result.views(10, synth.drug_vocab(), synth.adr_vocab()) {
        println!("  {view}");
    }
}
