//! Interaction screening: the drug-safety-evaluator workflow of thesis
//! §4.1, headless. Search the mined signals for a specific drug, restrict
//! to severe and *undocumented* interactions, cross-check against the
//! disproportionality baselines, and drill down to the raw case reports.
//!
//! ```sh
//! cargo run --release --example interaction_screening [DRUG]
//! ```

use maras::core::{supporting_reports, KnowledgeBase, Pipeline, PipelineConfig, RuleQuery};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::signals::{
    ebgm_from_table, interaction_contrast, ContingencyTable, GammaMixturePrior, SignalScores,
};

fn main() {
    let drug = std::env::args().nth(1).unwrap_or_else(|| "PROGRAF".to_string());

    let mut synth = Synthesizer::new(SynthConfig::default());
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let (dv, av) = (synth.drug_vocab().clone(), synth.adr_vocab().clone());
    let result =
        Pipeline::new(PipelineConfig::default().with_min_support(8)).run(quarter, &dv, &av);
    let kb = KnowledgeBase::literature_validated();

    // --- search: all interactions involving the drug --------------------
    let hits = RuleQuery::new().with_drug(&drug).apply(&result, &dv, &av, None);
    println!("{} mined interactions involve {drug}", hits.len());

    // --- triage: severe + undocumented only ------------------------------
    let triage = RuleQuery::new()
        .with_drug(&drug)
        .with_min_severity(4) // hospitalization or worse
        .unknown_only()
        .apply(&result, &dv, &av, Some(&kb));
    println!("{} of them are severe and not in the knowledge base\n", triage.len());

    for &rank in hits.iter().take(3) {
        let ranked = &result.ranked[rank];
        let rule = &ranked.cluster.target;
        let view = result.view(rank, &dv, &av);
        println!("{view}");

        // Known or unknown?
        let names = result.encoded.names(&rule.drugs, &dv, &av);
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        match kb.lookup(&refs) {
            Some(known) => println!("  documented: {}", known.source),
            None => println!("  NOT documented -> candidate for investigation"),
        }

        // Cross-check with classical pharmacovigilance statistics.
        let table = ContingencyTable::from_db(&result.encoded.db, &rule.drugs, &rule.adrs);
        let scores = SignalScores::from_table(table);
        println!(
            "  baselines: RRR={:.1} PRR={:.1} [{:.1},{:.1}] ROR={:.1} chi2={:.0} Evans={}",
            scores.rrr,
            scores.prr.estimate,
            scores.prr.lower,
            scores.prr.upper,
            scores.ror.estimate,
            scores.chi2,
            scores.evans
        );
        let contrast = interaction_contrast(&result.encoded.db, &rule.drugs, &rule.adrs);
        println!("  interaction contrast vs best single drug: {contrast:+.2} bits");
        let shrunk = ebgm_from_table(&table, &GammaMixturePrior::default());
        println!(
            "  MGPS shrinkage: EBGM={:.1} EB05={:.1} -> {}",
            shrunk.ebgm,
            shrunk.eb05,
            if shrunk.is_signal() { "signal (EB05 >= 2)" } else { "below EB05 threshold" }
        );

        // Drill down to the raw FAERS reports (thesis: "analyze the
        // original data reports submitted by patients").
        let reports = supporting_reports(&result, rule);
        println!("  {} supporting case reports; first two:", reports.len());
        for report in reports.iter().take(2) {
            println!(
                "    case {} age={} sex={} country={} outcomes={:?}",
                report.case_id,
                report.age.map_or("?".into(), |a| format!("{a:.0}")),
                report.sex.code(),
                report.country,
                report.outcomes.iter().map(|o| o.code()).collect::<Vec<_>>()
            );
        }
        println!();
    }
}
