//! Glyph gallery: renders the thesis §4 visualizations for the mined
//! signals — a panoramagram overview, a zoomed contextual glyph, and the
//! bar-chart baseline — into `target/gallery/`.
//!
//! ```sh
//! cargo run --release --example glyph_gallery
//! open target/gallery/panoramagram.svg
//! ```

use maras::core::{Pipeline, PipelineConfig};
use maras::faers::{QuarterId, SynthConfig, Synthesizer};
use maras::rules::DrugAdrRule;
use maras::viz::{glyph_svg, mcac_barchart, panorama_svg, GlyphConfig, PanoramaConfig};
use std::path::Path;

fn main() -> std::io::Result<()> {
    let mut synth = Synthesizer::new(SynthConfig::default());
    let quarter = synth.generate_quarter(QuarterId::new(2014, 1));
    let (dv, av) = (synth.drug_vocab().clone(), synth.adr_vocab().clone());
    let result =
        Pipeline::new(PipelineConfig::default().with_min_support(8)).run(quarter, &dv, &av);
    assert!(!result.ranked.is_empty(), "no signals mined");

    let namer = |rule: &DrugAdrRule| -> String {
        let drugs = result.encoded.names(&rule.drugs, &dv, &av);
        let adrs = result.encoded.names(&rule.adrs, &dv, &av);
        format!("{} => {}", drugs.join("+"), adrs.join(","))
    };
    let dir = Path::new("target/gallery");
    std::fs::create_dir_all(dir)?;

    // Overview: the ranked list as a small-multiple grid.
    let top = &result.ranked[..result.ranked.len().min(15)];
    panorama_svg(top, &PanoramaConfig::default(), Some(&namer))
        .save(&dir.join("panoramagram.svg"))?;

    // Drill-down: the #1 signal, zoomed with labels, plus its bar-chart
    // rendition for comparison (the thesis's user study compared exactly
    // these two).
    let best = &result.ranked[0];
    glyph_svg(&best.cluster, &GlyphConfig::zoomed(), Some(&namer))
        .save(&dir.join("top_signal_zoom.svg"))?;
    mcac_barchart(&best.cluster, &namer(&best.cluster.target), Some(&namer))
        .save(&dir.join("top_signal_barchart.svg"))?;

    println!("wrote 3 SVGs to {}:", dir.display());
    for f in ["panoramagram.svg", "top_signal_zoom.svg", "top_signal_barchart.svg"] {
        println!("  {f}");
    }
    println!("\n#1 signal: {}", namer(&best.cluster.target));
    Ok(())
}
